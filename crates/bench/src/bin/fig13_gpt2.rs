//! **Figure 13**: GPT-2 (GeLU) scalability — only the attention optimisation
//! applies, yet Long Exposure still wins.
//!
//! Paper: average speedups up to 1.63× (GPT2-Large) and 1.55× (GPT2-XL)
//! across seq 512/1024 with LoRA/Adapter/BitFit.

use long_exposure::engine::StepMode;
use lx_bench::{calibrated_engine, default_opt, fmt_ms, header, mean_step, row};
use lx_model::ModelConfig;
use lx_peft::PeftMethod;
use lx_runtime::cost::{step_cost, DeviceSpec, WorkloadParams};

fn main() {
    let cli = lx_bench::BenchCli::parse("fig13_gpt2");
    let steps = 3;
    println!("== Fig. 13 (measured): GPT-2-style sim model (GeLU: attention-only sparsity) ==\n");
    header(&[
        "model",
        "seq",
        "method",
        "dense ms",
        "long-exp ms",
        "speedup",
        "attn dens",
        "mlp dens",
    ]);
    let cfg = ModelConfig::gpt2_sim();
    let mut attn_density = 1.0f64;
    for seq in [256usize, 512] {
        let batch = if seq > 256 { 1 } else { 2 };
        for (mname, method) in [
            ("lora", PeftMethod::lora_default()),
            ("adapter", PeftMethod::adapter_default()),
            ("bitfit", PeftMethod::BitFit),
        ] {
            let (mut engine, mut batcher) = calibrated_engine(cfg.clone(), method, batch, seq, 42);
            let mut opt = default_opt();
            let dense = mean_step(
                &mut engine,
                &mut batcher,
                batch,
                seq,
                StepMode::Dense,
                steps,
                &mut opt,
            );
            let lx = mean_step(
                &mut engine,
                &mut batcher,
                batch,
                seq,
                StepMode::Sparse,
                steps,
                &mut opt,
            );
            if let Some(d) = lx.attn_density {
                attn_density = d as f64;
            }
            assert!(lx.mlp_density.is_none(), "GeLU model must not sparsify MLP");
            row(&[
                cfg.name.clone(),
                seq.to_string(),
                mname.to_string(),
                fmt_ms(dense.total()),
                fmt_ms(lx.total()),
                format!(
                    "{:.2}x",
                    dense.total().as_secs_f64() / lx.total().as_secs_f64()
                ),
                format!("{:.2}", lx.attn_density.unwrap_or(1.0)),
                "dense (GeLU)".into(),
            ]);
        }
    }

    println!("\n== Fig. 13 (modelled): paper dims on A100 (attention-only savings) ==\n");
    header(&[
        "model",
        "seq",
        "dense ms",
        "long-exp ms",
        "speedup",
        "paper avg",
    ]);
    let dev = DeviceSpec::a100();
    for (name, cfg, paper) in [
        ("gpt2-large", ModelConfig::gpt2_large(), "1.63x"),
        ("gpt2-xl", ModelConfig::gpt2_xl(), "1.55x"),
    ] {
        for seq in [512usize, 1024] {
            let lf = 0.003;
            let dense = step_cost(&dev, &cfg, &WorkloadParams::dense(8, seq, lf)).total_s();
            let lx = step_cost(
                &dev,
                &cfg,
                &WorkloadParams::long_exposure(8, seq, lf, attn_density, 1.0),
            )
            .total_s();
            row(&[
                name.to_string(),
                seq.to_string(),
                format!("{:.1}", dense * 1e3),
                format!("{:.1}", lx * 1e3),
                format!("{:.2}x", dense / lx),
                paper.to_string(),
            ]);
        }
    }
    println!(
        "\nshape to check: smaller-than-OPT but consistent speedups; MLP stays dense for GeLU."
    );
    cli.finish();
}
