//! Asynchronous front door: submissions from any thread, training on a
//! dedicated scheduler thread.
//!
//! [`FinetuneService::spawn`] moves a [`Scheduler`] onto its own thread.
//! Clients call [`FinetuneService::submit`] to enqueue a [`JobSpec`] and get
//! back a [`JobTicket`] they can block on ([`JobTicket::wait`]), poll
//! ([`JobTicket::state`]), or *stream* ([`JobTicket::progress`]): the
//! scheduler publishes a typed [`StepEvent`] after every training step, so
//! tenants observe loss/density/throughput per step instead of only a
//! terminal report. The scheduler thread interleaves slices across all
//! admitted jobs; between slices it drains the submission queue, so new
//! tenants join a busy service without stopping it.

use crate::job::{JobReport, JobSpec, JobState, StepEvent};
use crate::metrics::MetricsSnapshot;
use crate::scheduler::Scheduler;
use lx_obs::TraceSession;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::mpsc::{self, Receiver, Sender, TryRecvError};
use std::sync::{Arc, Condvar, Mutex};

struct TicketShared {
    state: JobState,
    events: Vec<StepEvent>,
}

struct TicketInner {
    shared: Mutex<TicketShared>,
    cv: Condvar,
}

impl TicketInner {
    fn new() -> Self {
        TicketInner {
            shared: Mutex::new(TicketShared {
                state: JobState::Queued,
                events: Vec::new(),
            }),
            cv: Condvar::new(),
        }
    }

    fn set(&self, state: JobState) {
        self.shared.lock().expect("ticket lock").state = state;
        self.cv.notify_all();
    }

    fn push_event(&self, event: StepEvent) {
        self.shared.lock().expect("ticket lock").events.push(event);
        self.cv.notify_all();
    }
}

/// Client-side handle to one submitted job.
#[derive(Clone)]
pub struct JobTicket {
    inner: Arc<TicketInner>,
}

impl JobTicket {
    /// Current lifecycle state (non-blocking).
    pub fn state(&self) -> JobState {
        self.inner.shared.lock().expect("ticket lock").state.clone()
    }

    /// Block until the job completes or is rejected.
    pub fn wait(&self) -> Result<JobReport, String> {
        let mut guard = self.inner.shared.lock().expect("ticket lock");
        loop {
            match &guard.state {
                JobState::Completed(report) => return Ok(report.clone()),
                JobState::Rejected(reason) => return Err(reason.clone()),
                _ => guard = self.inner.cv.wait(guard).expect("ticket lock"),
            }
        }
    }

    /// Stream this job's per-step [`StepEvent`]s. The iterator replays every
    /// event already recorded, blocks while the job is live, and ends when
    /// the job reaches a terminal state and all events are drained. Each
    /// stream starts from the first step, so late subscribers miss nothing.
    pub fn progress(&self) -> ProgressStream {
        ProgressStream {
            inner: self.inner.clone(),
            cursor: 0,
        }
    }
}

/// Blocking iterator over a job's per-step events (see
/// [`JobTicket::progress`]).
pub struct ProgressStream {
    inner: Arc<TicketInner>,
    cursor: usize,
}

impl Iterator for ProgressStream {
    type Item = StepEvent;

    fn next(&mut self) -> Option<StepEvent> {
        let mut guard = self.inner.shared.lock().expect("ticket lock");
        loop {
            if self.cursor < guard.events.len() {
                let event = guard.events[self.cursor].clone();
                self.cursor += 1;
                return Some(event);
            }
            match guard.state {
                JobState::Completed(_) | JobState::Rejected(_) => return None,
                _ => guard = self.inner.cv.wait(guard).expect("ticket lock"),
            }
        }
    }
}

enum Command {
    Submit(JobSpec, Arc<TicketInner>),
    Metrics(Sender<MetricsSnapshot>),
}

/// Handle to a running multi-tenant fine-tuning service.
pub struct FinetuneService {
    tx: Option<Sender<Command>>,
    thread: Option<std::thread::JoinHandle<Scheduler>>,
    /// Live trace session + where to dump it on shutdown (see `LX_TRACE`).
    trace: Option<(TraceSession, PathBuf)>,
}

impl FinetuneService {
    /// Start the service on its own thread. When the `LX_TRACE=path.json`
    /// environment variable is set, the whole service run is recorded and a
    /// Chrome trace-event file is written to that path on shutdown (or drop)
    /// — load it in Perfetto / `chrome://tracing` to see per-tenant slices,
    /// adapter swaps and step phases on a timeline.
    pub fn spawn(scheduler: Scheduler) -> Self {
        match std::env::var("LX_TRACE") {
            Ok(path) if !path.is_empty() => Self::spawn_traced(scheduler, PathBuf::from(path)),
            _ => Self::spawn_inner(scheduler, None),
        }
    }

    /// [`Self::spawn`] with tracing forced on, dumping the Chrome trace to
    /// `path` at shutdown regardless of `LX_TRACE`.
    pub fn spawn_traced(scheduler: Scheduler, path: PathBuf) -> Self {
        let trace = match TraceSession::start() {
            Ok(session) => Some((session, path)),
            Err(reason) => {
                eprintln!("lx-serve: trace disabled: {reason}");
                None
            }
        };
        Self::spawn_inner(scheduler, trace)
    }

    fn spawn_inner(scheduler: Scheduler, trace: Option<(TraceSession, PathBuf)>) -> Self {
        let (tx, rx) = mpsc::channel();
        let thread = std::thread::Builder::new()
            .name("lx-serve-scheduler".into())
            .spawn(move || serve_loop(scheduler, rx))
            .expect("failed to spawn scheduler thread");
        FinetuneService {
            tx: Some(tx),
            thread: Some(thread),
            trace,
        }
    }

    fn dump_trace(trace: Option<(TraceSession, PathBuf)>) {
        if let Some((session, path)) = trace {
            if let Err(e) = session.finish().write_chrome(&path) {
                eprintln!("lx-serve: failed to write trace {}: {e}", path.display());
            }
        }
    }

    /// Enqueue a job; returns immediately with a ticket.
    pub fn submit(&self, spec: JobSpec) -> JobTicket {
        let inner = Arc::new(TicketInner::new());
        let ticket = JobTicket {
            inner: inner.clone(),
        };
        let tx = self.tx.as_ref().expect("service already shut down");
        if tx.send(Command::Submit(spec, inner.clone())).is_err() {
            inner.set(JobState::Rejected("service stopped".into()));
        }
        ticket
    }

    /// Snapshot of the live metrics (queue depth, throughput, per tenant).
    pub fn metrics(&self) -> MetricsSnapshot {
        let (tx, rx) = mpsc::channel();
        self.tx
            .as_ref()
            .expect("service already shut down")
            .send(Command::Metrics(tx))
            .expect("scheduler thread gone");
        rx.recv().expect("scheduler thread gone")
    }

    /// Finish all admitted jobs, stop the thread, and hand back the
    /// scheduler (registry, metrics, backbone).
    pub fn shutdown(mut self) -> Scheduler {
        drop(self.tx.take());
        let scheduler = self
            .thread
            .take()
            .expect("double shutdown")
            .join()
            .expect("scheduler thread panicked");
        Self::dump_trace(self.trace.take());
        scheduler
    }
}

impl Drop for FinetuneService {
    fn drop(&mut self) {
        drop(self.tx.take());
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
        Self::dump_trace(self.trace.take());
    }
}

fn serve_loop(mut scheduler: Scheduler, rx: Receiver<Command>) -> Scheduler {
    let mut tickets: HashMap<String, Arc<TicketInner>> = HashMap::new();
    let mut disconnected = false;
    loop {
        // Admit everything already queued without blocking.
        loop {
            match rx.try_recv() {
                Ok(cmd) => handle(&mut scheduler, cmd, &mut tickets),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    disconnected = true;
                    break;
                }
            }
        }
        if scheduler.active_jobs() == 0 {
            if disconnected {
                return scheduler;
            }
            // Idle: block until a submission (or shutdown) arrives.
            match rx.recv() {
                Ok(cmd) => handle(&mut scheduler, cmd, &mut tickets),
                Err(_) => return scheduler,
            }
            continue;
        }
        // Contain slice panics (bad adapter shapes, alignment asserts): one
        // faulty tenant must not hang every other client's ticket forever.
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| scheduler.run_slice())) {
            Ok(Some(report)) => {
                if let Some(ticket) = tickets.remove(&report.tenant) {
                    ticket.set(JobState::Completed(report));
                }
            }
            Ok(None) => {}
            Err(payload) => {
                let msg = panic_message(&payload);
                return failed_loop(scheduler, rx, tickets, msg);
            }
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic".to_string()
    }
}

/// Terminal state after a slice panic: unblock every waiter, then keep
/// answering metrics queries and rejecting submissions until shutdown. The
/// scheduler may hold a half-trained slice, so no further training runs.
fn failed_loop(
    scheduler: Scheduler,
    rx: Receiver<Command>,
    tickets: HashMap<String, Arc<TicketInner>>,
    msg: String,
) -> Scheduler {
    let reason = format!("scheduler failed: {msg}");
    for (_, ticket) in tickets {
        ticket.set(JobState::Rejected(reason.clone()));
    }
    while let Ok(cmd) = rx.recv() {
        match cmd {
            Command::Submit(_, ticket) => ticket.set(JobState::Rejected(reason.clone())),
            Command::Metrics(reply) => {
                let _ = reply.send(scheduler.metrics());
            }
        }
    }
    scheduler
}

fn handle(
    scheduler: &mut Scheduler,
    cmd: Command,
    tickets: &mut HashMap<String, Arc<TicketInner>>,
) {
    match cmd {
        Command::Submit(spec, ticket) => {
            let tenant = spec.tenant.clone();
            // Per-step events flow from the scheduler thread straight into
            // the ticket, where `JobTicket::progress()` streams them out.
            let sink_ticket = ticket.clone();
            let sink = Box::new(move |event| sink_ticket.push_event(event));
            match scheduler.submit_with_progress(spec, Some(sink)) {
                Ok(()) => {
                    ticket.set(JobState::Running);
                    tickets.insert(tenant, ticket);
                }
                Err(reason) => ticket.set(JobState::Rejected(reason)),
            }
        }
        Command::Metrics(reply) => {
            let _ = reply.send(scheduler.metrics());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::AdapterRegistry;
    use crate::scheduler::ServeConfig;
    use long_exposure::engine::EngineConfig;
    use lx_model::{ModelConfig, TransformerModel};
    use lx_peft::PeftMethod;

    fn service() -> FinetuneService {
        let mut model = TransformerModel::new(ModelConfig::test_tiny(), 21);
        model.freeze_all();
        let scheduler = Scheduler::new(
            model,
            EngineConfig {
                block_size: 4,
                ..EngineConfig::default()
            },
            ServeConfig {
                slice_steps: 2,
                ..ServeConfig::default()
            },
            Arc::new(AdapterRegistry::in_memory()),
        );
        FinetuneService::spawn(scheduler)
    }

    fn spec(tenant: &str, steps: u64) -> JobSpec {
        JobSpec {
            stream_len: 2_000,
            ..JobSpec::lora(tenant, steps, 1, 16)
        }
    }

    #[test]
    fn concurrent_submissions_all_complete() {
        let svc = service();
        let t1 = svc.submit(spec("alpha", 6));
        let t2 = svc.submit(spec("beta", 6));
        let r1 = t1.wait().expect("alpha");
        let r2 = t2.wait().expect("beta");
        assert_eq!(r1.steps, 6);
        assert_eq!(r2.steps, 6);
        let snapshot = svc.metrics();
        assert_eq!(snapshot.completed_jobs, 2);
        let scheduler = svc.shutdown();
        let mut tenants = scheduler.registry().tenants();
        tenants.sort();
        assert_eq!(tenants, vec!["alpha".to_string(), "beta".to_string()]);
    }

    #[test]
    fn progress_stream_delivers_every_step_then_ends() {
        let svc = service();
        let ticket = svc.submit(spec("streamer", 5));
        // Consume the stream concurrently with training.
        let events: Vec<_> = ticket.progress().collect();
        let report = ticket.wait().expect("completes");
        assert_eq!(events.len(), 5);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.step, i as u64 + 1);
            assert_eq!(e.loss, report.losses[i]);
        }
        // A late subscriber replays the full history.
        let replay: Vec<_> = ticket.progress().collect();
        assert_eq!(replay, events);
        svc.shutdown();
    }

    #[test]
    fn rejection_reports_reason() {
        let svc = service();
        let mut bad = spec("bad", 2);
        bad.method = PeftMethod::BitFit;
        let ticket = svc.submit(bad);
        let err = ticket.wait().unwrap_err();
        assert!(err.contains("detachable"), "{err}");
        svc.shutdown();
    }

    #[test]
    fn submissions_while_busy_are_admitted() {
        let svc = service();
        let t1 = svc.submit(spec("first", 8));
        // Submitted later, while the first job is (very likely) running.
        let t2 = svc.submit(spec("second", 4));
        assert!(t1.wait().is_ok());
        assert!(t2.wait().is_ok());
        svc.shutdown();
    }

    #[test]
    fn slice_panic_rejects_tickets_instead_of_hanging() {
        // Poison the registry with an adapter extracted from a *larger*
        // backbone: admission succeeds (method matches), but attaching it
        // mid-slice hits a shape-mismatch assert. The ticket must resolve
        // to Rejected — not hang — and metrics must stay answerable.
        let registry = Arc::new(AdapterRegistry::in_memory());
        {
            let mut big_cfg = ModelConfig::test_tiny();
            big_cfg.d_model = 32;
            let mut big = TransformerModel::new(big_cfg, 1);
            big.freeze_all();
            let adapter =
                lx_peft::TenantAdapter::initialise(&mut big, PeftMethod::lora_default(), 1);
            registry.put("poisoned", &adapter).unwrap();
        }
        let mut model = TransformerModel::new(ModelConfig::test_tiny(), 21);
        model.freeze_all();
        let scheduler = Scheduler::new(
            model,
            EngineConfig {
                block_size: 4,
                ..EngineConfig::default()
            },
            ServeConfig::default(),
            registry,
        );
        let svc = FinetuneService::spawn(scheduler);
        let mut bad = spec("poisoned", 2);
        bad.adapter_seed = 1;
        let ticket = svc.submit(bad);
        let err = ticket.wait().unwrap_err();
        assert!(err.contains("scheduler failed"), "{err}");
        // Service is degraded but responsive: metrics answer, new jobs are
        // rejected with the failure reason.
        let _ = svc.metrics();
        let after = svc.submit(spec("late", 2));
        assert!(after.wait().unwrap_err().contains("scheduler failed"));
        svc.shutdown();
    }

    #[test]
    fn shutdown_waits_for_active_jobs() {
        let svc = service();
        let ticket = svc.submit(spec("draining", 4));
        let scheduler = svc.shutdown();
        assert!(matches!(ticket.state(), JobState::Completed(_)));
        assert_eq!(scheduler.active_jobs(), 0);
    }
}
