//! **Long Exposure**: accelerating parameter-efficient fine-tuning for LLMs
//! under shadowy sparsity (SC'24) — reference Rust implementation.
//!
//! During fine-tuning, per-token sparsity patterns overlap across the
//! sequence and their logical-AND leaves little *directly usable* sparsity —
//! the paper calls this **shadowy sparsity**. Long Exposure recovers it with
//! three cooperating components:
//!
//! * [`exposer`] — *Shadowy-sparsity Exposer* (§IV): head-specific block
//!   attention masks instead of one uniform mask, and an importance filter
//!   that turns scattered MLP activations into structured neuron-block
//!   sparsity.
//! * [`predictor`] — *Sequence-oriented Predictor* (§V): tiny low-rank
//!   networks that predict each layer's sparse patterns from the block input
//!   *before* the block computes, trained offline on calibration captures
//!   with noise augmentation and a recall-weighted loss.
//! * [`engine`] — the fine-tuning engine that wires predictors and the
//!   dynamic-aware operators (in `lx-sparse`, §VI) into every PEFT method:
//!   every step is composed as an `lx_model::StepRequest` whose plan source
//!   comes from a pluggable [`policy::SparsityPolicy`] (dense baseline,
//!   exposer oracle, predicted, random ablations), with per-phase timing
//!   for the paper's breakdown experiments in the returned
//!   `lx_model::StepOutcome`.
//!
//! ```no_run
//! use long_exposure::engine::{EngineConfig, FinetuneEngine};
//! use lx_model::{ModelConfig, TransformerModel, AdamW, prompt_aware_targets};
//! use lx_peft::PeftMethod;
//!
//! let mut model = TransformerModel::new(ModelConfig::opt_sim_small(), 42);
//! PeftMethod::lora_default().apply(&mut model, 1);
//! let mut engine = FinetuneEngine::new(model, EngineConfig::default());
//! // Calibrate predictors on a few batches, then fine-tune sparse.
//! let ids: Vec<u32> = (0..128).map(|i| i % 1000).collect();
//! engine.calibrate(&[(ids.clone(), 2, 64)]);
//! let targets = prompt_aware_targets(&ids, 2, 64, 0);
//! let mut opt = AdamW::new(1e-3, 0.01);
//! let outcome = engine.train_step(&ids, &targets, 2, 64, &mut opt);
//! println!("loss {:.3} predict {:?}", outcome.loss, outcome.predict);
//! ```

pub mod checkpoint;
pub mod engine;
pub mod exposer;
pub mod policy;
pub mod predictor;

pub use checkpoint::{load_predictors, save_predictors, CheckpointMeta};
pub use engine::{CalibrationReport, EngineConfig, FinetuneEngine, StepMode};
pub use exposer::Exposer;
pub use policy::{
    DensePolicy, OraclePolicy, PlanRefreshConfig, PlanReuseStats, PredictedPolicy, RandomPolicy,
    RandomTarget, SparsityPolicy,
};
pub use predictor::{AttnPredictor, MlpPredictor};
