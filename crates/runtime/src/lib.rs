//! Platform and distribution substrate.
//!
//! The paper evaluates on A100/A6000 GPUs at billion-parameter scale; this
//! box has two CPU cores. The runtime crate bridges that gap two ways:
//!
//! * [`cost`] — a roofline cost model parameterised with the paper's
//!   published device specs, driven by exact FLOP/byte counts of our layer
//!   implementations, for the platform-specific tables (Fig. 7/13/14 at
//!   paper dimensions);
//! * [`kernel_policy`] — the same compute-vs-traffic reasoning applied to
//!   the CPU cache hierarchy: derives the packed-GEMM tile shapes and the
//!   packed-vs-reference crossover installed into `lx-kernels`;
//! * [`memsim`] — an accounting model of fine-tuning memory (parameters,
//!   optimizer state, activations, sparse vs dense attention buffers,
//!   CPU-offloaded weights) for Fig. 8 including OOM detection;
//! * [`parallel_trainer`] — a real thread-based data-parallel trainer with
//!   gradient all-reduce for the strong-scaling mechanism of Fig. 14.
//!
//! Every experiment that uses the cost model *also* reports real measured
//! wall-clock from the sim models, so modelled and measured shapes can be
//! compared side by side (see EXPERIMENTS.md).

pub mod cost;
pub mod kernel_policy;
pub mod memsim;
pub mod parallel_trainer;

pub use cost::{DeviceSpec, StepCost, WorkloadParams};
pub use kernel_policy::CpuSpec;
pub use memsim::{MemoryBreakdown, MemoryMode};
pub use parallel_trainer::DataParallelTrainer;
