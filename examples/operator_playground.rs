//! Direct use of the dynamic-aware operators (paper §VI): build pooled
//! layouts, run SDD → block softmax → DSD against the dense equivalent, and
//! time both.
//!
//! ```sh
//! cargo run --release -p lx-examples --example operator_playground
//! ```

use lx_sparse::attention::{block_row_softmax, dsd, sdd_nt, CausalFill};
use lx_sparse::{PatternPool, PatternSpec};
use lx_tensor::gemm::gemm_nt;
use lx_tensor::ops::{apply_causal_mask, softmax_rows};
use lx_tensor::rng::randn_vec;
use std::time::Instant;

fn main() {
    let (s, dh, block) = (512, 64, 32);
    let n = s / block;
    println!("== dynamic-aware operator playground ==");
    println!("seq {s}, head dim {dh}, block {block} ({n}x{n} grid)\n");

    // Offline: build the pattern pool once.
    let t0 = Instant::now();
    let pool = PatternPool::default_pool(block, &[n]);
    println!("offline pool construction: {:?}", t0.elapsed());

    let q = randn_vec(s * dh, 1.0, 1);
    let k = randn_vec(s * dh, 1.0, 2);
    let v = randn_vec(s * dh, 1.0, 3);
    let scale = 1.0 / (dh as f32).sqrt();

    // Dense reference.
    let t0 = Instant::now();
    let mut scores = vec![0.0f32; s * s];
    gemm_nt(s, dh, s, &q, &k, &mut scores, 0.0);
    for v in scores.iter_mut() {
        *v *= scale;
    }
    apply_causal_mask(&mut scores, s);
    softmax_rows(&mut scores, s);
    let mut out_dense = vec![0.0f32; s * dh];
    lx_tensor::gemm::gemm(s, s, dh, &scores, &v, &mut out_dense, 0.0);
    let dense_time = t0.elapsed();
    println!("dense attention: {dense_time:?}");

    for spec in [
        PatternSpec::Causal,
        PatternSpec::LocalGlobal { w: 4, g: 2 },
        PatternSpec::LocalWindow { w: 2 },
        PatternSpec::Strided { w: 1, stride: 4 },
    ] {
        let layout = pool.layout(spec, n);
        let t0 = Instant::now();
        let mut p = vec![0.0f32; layout.data_len()];
        sdd_nt(&q, &k, s, dh, scale, &layout, CausalFill::NegInf, &mut p);
        block_row_softmax(&mut p, &layout);
        let mut out = vec![0.0f32; s * dh];
        dsd(&p, &v, s, dh, &layout, &mut out);
        let t = t0.elapsed();
        // Error vs dense on rows fully covered by the pattern (causal covers all).
        let err: f32 = if spec == PatternSpec::Causal {
            out.iter()
                .zip(&out_dense)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f32::max)
        } else {
            f32::NAN
        };
        println!(
            "{:<22} density {:.2}  time {:>9.2?}  speedup {:>5.2}x{}",
            spec.name(),
            layout.density(),
            t,
            dense_time.as_secs_f64() / t.as_secs_f64(),
            if err.is_nan() {
                String::new()
            } else {
                format!("  max|err| {err:.2e}")
            }
        );
    }

    // Online combination cost: assemble a 16-head layout from the pool.
    let specs: Vec<PatternSpec> = (0..16)
        .map(|h| {
            if h % 3 == 0 {
                PatternSpec::LocalGlobal { w: 2, g: 1 }
            } else {
                PatternSpec::LocalWindow { w: 2 }
            }
        })
        .collect();
    let t0 = Instant::now();
    let ml = pool.combine(n, &specs);
    println!(
        "\nonline combination of 16 heads: {:?} ({} blocks total) — offset arithmetic only",
        t0.elapsed(),
        ml.total_blocks()
    );
}
