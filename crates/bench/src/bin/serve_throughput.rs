//! Multi-tenant serving throughput: N=4 concurrent tenant fine-tuning jobs
//! sharing ONE backbone and ONE calibrated predictor set, scheduled in
//! fair-share time-slices. Reports per-tenant and aggregate throughput, the
//! adapter swap overhead, and the dense-execution baseline for comparison.
//!
//! ```sh
//! cargo run --release -p lx-bench --bin serve_throughput
//! ```

use long_exposure::engine::{EngineConfig, StepMode};
use lx_bench::{fmt_ms, header, row, sim_model, SIM_BLOCK};
use lx_model::ModelConfig;
use lx_serve::{AdapterRegistry, DatasetSpec, JobSpec, SchedPolicy, Scheduler, ServeConfig};
use std::sync::Arc;
use std::time::Instant;

const N_TENANTS: usize = 4;
const STEPS_PER_TENANT: u64 = 8;
const BATCH: usize = 1;
const SEQ: usize = 64;

fn backbone(seed: u64) -> lx_model::TransformerModel {
    let mut model = sim_model(ModelConfig::opt_sim_small(), seed);
    model.freeze_all();
    model
}

fn engine_cfg() -> EngineConfig {
    EngineConfig {
        block_size: SIM_BLOCK,
        attn_prob_threshold: 8.0 / SEQ as f32,
        calib_epochs: 80,
        ..EngineConfig::default()
    }
}

fn tenant_specs() -> Vec<JobSpec> {
    (0..N_TENANTS)
        .map(|i| {
            let mut spec = JobSpec::lora(format!("tenant-{i}"), STEPS_PER_TENANT, BATCH, SEQ);
            spec.dataset = DatasetSpec::E2e {
                world_seed: 0x5eed,
                salt: 1000 + i as u64,
            };
            spec.stream_len = 50_000;
            spec
        })
        .collect()
}

fn run(mode: StepMode, registry: Arc<AdapterRegistry>, label: &str) {
    let mut scheduler = Scheduler::new(
        backbone(42),
        engine_cfg(),
        ServeConfig {
            slice_steps: 2,
            policy: SchedPolicy::FairShare,
            mode,
            prefetch: true,
        },
        registry.clone(),
    );
    if mode == StepMode::Sparse && !scheduler.calibrated() {
        // One calibration, shared by every tenant and persisted for later
        // processes via the registry.
        let spec = DatasetSpec::E2e {
            world_seed: 0x5eed,
            salt: 0,
        };
        let mut batcher = spec.build_batcher(1024, 50_000);
        let calib: Vec<(Vec<u32>, usize, usize)> = (0..3)
            .map(|_| (batcher.next_batch(BATCH, SEQ), BATCH, SEQ))
            .collect();
        let t0 = Instant::now();
        let report = scheduler.calibrate_shared(&calib);
        println!(
            "calibrated shared predictors once in {} ms (attn recall {:.1}%, mlp recall {:.1}%) — amortised over {N_TENANTS} tenants",
            fmt_ms(t0.elapsed()),
            100.0 * report.mean_attn_recall(),
            100.0 * report.mean_mlp_recall(),
        );
    }
    for spec in tenant_specs() {
        scheduler.submit(spec).expect("submit");
    }
    println!(
        "\n== {label}: {N_TENANTS} tenants × {STEPS_PER_TENANT} steps (batch {BATCH}, seq {SEQ}) on one shared backbone =="
    );
    let t0 = Instant::now();
    let reports = scheduler.run_to_completion();
    let wall = t0.elapsed();
    let snap = scheduler.metrics();

    header(&[
        "tenant",
        "steps",
        "steps/s",
        "tok/s",
        "final loss",
        "swap ms/slice",
    ]);
    for (tenant, m) in &snap.per_tenant {
        let final_loss = reports
            .iter()
            .find(|r| &r.tenant == tenant)
            .map_or(f32::NAN, |r| r.final_loss());
        row(&[
            tenant.clone(),
            m.steps.to_string(),
            format!("{:.2}", m.steps_per_sec()),
            format!("{:.0}", m.tokens_per_sec()),
            format!("{final_loss:.4}"),
            format!("{:.2}", m.swap.as_secs_f64() * 1e3 / m.slices.max(1) as f64),
        ]);
    }
    let adapter_params: usize = reports.iter().map(|r| r.adapter_params).sum();
    println!(
        "aggregate: {} steps in {} ms → {:.2} steps/s, {:.0} tok/s, utilisation {:.0}%",
        snap.total_steps,
        fmt_ms(wall),
        snap.total_steps as f64 / wall.as_secs_f64(),
        snap.total_tokens as f64 / wall.as_secs_f64(),
        100.0 * snap.utilisation(),
    );
    println!(
        "marginal per-tenant state: {} params total across {N_TENANTS} adapters ({:.2}% of one backbone)",
        adapter_params,
        100.0 * adapter_params as f64 / ModelConfig::opt_sim_small().param_count() as f64,
    );
}

fn main() {
    println!("== serve_throughput: multi-tenant PEFT serving benchmark ==");
    let registry = Arc::new(AdapterRegistry::in_memory());
    run(StepMode::Sparse, registry.clone(), "long-exposure (sparse)");
    // Fresh registry for the dense arm so tenants cold-start identically.
    run(
        StepMode::Dense,
        Arc::new(AdapterRegistry::in_memory()),
        "dense baseline",
    );
    println!(
        "\nregistry now holds {} adapters; predictors shared: {}",
        registry.len(),
        registry.predictors().is_some(),
    );
    lx_bench::maybe_emit_json("serve_throughput");
}
