//! The [`Packed`] backend: cache-blocked, panel-packed GEMM microkernels.
//!
//! Classic three-level blocking (BLIS/GotoBLAS structure, adapted from the
//! shared-memory-tile + register-tile pattern GPU kernels use):
//!
//! ```text
//!   for jc in steps of NC over n:            // C column block   (≈ L3)
//!     for pc in steps of KC over k:          // K block
//!       pack B[pc.., jc..] → B̃  (KC×NC, NR-wide column panels)   (≈ L2→L1)
//!       parallel over worker-disjoint row chunks of C:
//!         for ic in steps of MC over rows:   // A row block      (≈ L2)
//!           pack A[ic.., pc..] → Ã (MC×KC, MR-tall row panels)
//!           for jr, ir over NR/MR panels:
//!             microkernel: C[MR×NR] += Ã-panel · B̃-panel
//!             (last k-block: apply the fused epilogue to the hot tile)
//! ```
//!
//! * The microkernel keeps an `MR×NR` register tile of C accumulators and
//!   streams one `MR` column of Ã against one `NR` row of B̃ per k-step —
//!   explicit FMA-friendly inner loops. The register-tile shape follows the
//!   active [`Isa`] arm (6×16 scalar/AVX2/NEON, 14×32 AVX-512), and packing
//!   geometry follows the arm so each kernel sees panels of its own width.
//! * Packing absorbs the `_nt`/`_tn` transposes: all three variants feed the
//!   *same* microkernel, only the pack routines index differently. Edge tiles
//!   are zero-padded in the packed buffers, so the microkernel never branches
//!   on shape; write-back clamps to the valid region.
//! * B̃ is packed once per `(jc, pc)` block — in parallel across panel chunks
//!   when the pool is available — and shared read-only across all row tasks:
//!   the "B-panel reuse across A rows" that makes the kernel
//!   bandwidth-friendly. C row chunks are worker-disjoint (`par_rows`
//!   split_at_mut carving), so one big GEMM saturates all `LX_THREADS`
//!   workers.
//! * Nested calls (a GEMM issued from inside a pool worker, e.g. the
//!   per-block GEMMs of the sparse slab kernels) detect
//!   [`lx_parallel::in_worker`] via [`crate::sequential_mode`] and run the
//!   whole macro-kernel on the calling thread instead of oversubscribing the
//!   pool.
//! * A fused [`Epilogue`] is applied to each register tile immediately after
//!   its **final** k-block is accumulated — i.e. after the complete
//!   `beta·C + ΣA·B` sum, in the same element order as an unfused bias or
//!   GELU pass — so fused results are bit-identical to unfused ones while
//!   the separate read-modify-write passes over C disappear.
//!
//! Pack buffers are thread-local and reused across calls, so steady-state
//! GEMMs allocate nothing.

use crate::backend::{check_view, row_grain, scale_only, KernelBackend};
use crate::dispatch::tiles;
use crate::epilogue::{apply_epilogue, Epilogue};
use crate::isa::{active_isa, Isa};
use lx_parallel::par_rows;
use std::cell::RefCell;
use std::ops::Range;

/// Register tile height of the 6×16 arms (scalar/AVX2/NEON); also the unit
/// the cache-model rounds MC to. The AVX-512 arm uses its own 14×32 tile.
pub const MR: usize = 6;
/// Register tile width of the 6×16 arms; see [`MR`].
pub const NR: usize = 16;

/// Largest register tile any arm uses — sizes fixed spill buffers.
const MR_MAX: usize = 14;
const NR_MAX: usize = 32;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Layout {
    /// Operand stored as it is multiplied (`rows × cols` row-major).
    Normal,
    /// Operand stored transposed (`cols × rows` row-major).
    Transposed,
}

/// Element type a B operand may be stored in. Packing converts to f32, so
/// the microkernel and all accumulation stay f32 regardless of storage —
/// the BLIS-style mixed-precision scheme: lower-precision operands cost one
/// conversion during the O(k·n) pack, not per O(m·k·n) FLOP.
pub(crate) trait PackElem: Copy + Sync {
    fn to_f32(self) -> f32;
}

impl PackElem for f32 {
    #[inline(always)]
    fn to_f32(self) -> f32 {
        self
    }
}

/// `u16` is interpreted as IEEE binary16 bits.
impl PackElem for u16 {
    #[inline(always)]
    fn to_f32(self) -> f32 {
        crate::half::f16_bits_to_f32(self)
    }
}

/// A B operand the pack routines can read by **flat element index** — the
/// generalisation [`PackElem`] needs once storage is no longer one element
/// per slot. Block-quantized sources resolve their per-block scale from the
/// same flat index (`scales[idx / BLOCK]`), which works under `ldb` striding
/// because the index handed in is always buffer-relative, never
/// panel-relative.
///
/// The per-panel fill hooks have elementwise defaults that reproduce the
/// classic pack loops bit-for-bit; a source with occupancy structure (the
/// N:M view) overrides them to skip work. The destination panel is always
/// pre-zeroed by [`pack_b`], so an override may legitimately skip stores of
/// `+0.0` elements.
pub(crate) trait PackSrc: Sync {
    /// Dequantized/decoded f32 value of element `idx` of the row-major
    /// buffer.
    fn load(&self, idx: usize) -> f32;

    /// Fill one pre-zeroed `nr`-wide B̃ panel from a **Normal**-layout
    /// operand: `dst[p·nr + j] = element(pc+p, col0+j)` for `p < kc`,
    /// `j < width`.
    #[allow(clippy::too_many_arguments)]
    fn fill_panel_normal(
        &self,
        dst: &mut [f32],
        ldb: usize,
        pc: usize,
        kc: usize,
        col0: usize,
        width: usize,
        nr: usize,
    ) {
        fill_normal_elementwise(self, dst, ldb, pc, kc, col0, width, nr);
    }

    /// Fill one pre-zeroed `nr`-wide B̃ panel from a **Transposed**-layout
    /// operand: `dst[p·nr + j] = element(col0+j, pc+p)`.
    #[allow(clippy::too_many_arguments)]
    fn fill_panel_transposed(
        &self,
        dst: &mut [f32],
        ldb: usize,
        pc: usize,
        kc: usize,
        col0: usize,
        width: usize,
        nr: usize,
    ) {
        fill_transposed_elementwise(self, dst, ldb, pc, kc, col0, width, nr);
    }
}

/// The classic elementwise Normal-layout panel fill (also the fallback the
/// N:M override uses when its fast-path preconditions don't hold).
#[allow(clippy::too_many_arguments)]
fn fill_normal_elementwise<S: PackSrc + ?Sized>(
    b: &S,
    dst: &mut [f32],
    ldb: usize,
    pc: usize,
    kc: usize,
    col0: usize,
    width: usize,
    nr: usize,
) {
    for p in 0..kc {
        let base = (pc + p) * ldb + col0;
        for j in 0..width {
            dst[p * nr + j] = b.load(base + j);
        }
    }
}

/// Transposed-layout twin of [`fill_normal_elementwise`].
#[allow(clippy::too_many_arguments)]
fn fill_transposed_elementwise<S: PackSrc + ?Sized>(
    b: &S,
    dst: &mut [f32],
    ldb: usize,
    pc: usize,
    kc: usize,
    col0: usize,
    width: usize,
    nr: usize,
) {
    for j in 0..width {
        let base = (col0 + j) * ldb + pc;
        for p in 0..kc {
            dst[p * nr + j] = b.load(base + p);
        }
    }
}

impl<E: PackElem> PackSrc for [E] {
    #[inline(always)]
    fn load(&self, idx: usize) -> f32 {
        self[idx].to_f32()
    }
}

impl PackSrc for lx_quant::Q8View<'_> {
    #[inline(always)]
    fn load(&self, idx: usize) -> f32 {
        self.get(idx)
    }
}

impl PackSrc for lx_quant::Q4View<'_> {
    #[inline(always)]
    fn load(&self, idx: usize) -> f32 {
        self.get(idx)
    }
}

/// The zero-group-skipping pack arm: instead of decoding every element, walk
/// the row's occupancy groups, skip any group whose mask byte is 0 (a fully
/// pruned K-group — the structured case external masks produce), and scatter
/// only the kept slots into the pre-zeroed panel. Pack cost thus scales with
/// nnz rather than the dense element count. Writes are bit-identical to
/// packing the decoded dense matrix: pruned positions decode to `+0.0` (the
/// pre-zeroed panel), kept values land verbatim — a kept `+0.0` overwrites
/// panel zero with the same bits, and a kept `-0.0` is stored explicitly.
///
/// The group walk needs the flat index space to decompose by the view's own
/// row length, i.e. `ldb == cols`; any other striding falls back to the
/// elementwise fill, which is always correct.
impl PackSrc for lx_quant::NmView<'_> {
    #[inline(always)]
    fn load(&self, idx: usize) -> f32 {
        self.get(idx)
    }

    /// Normal layout: panel rows are k-steps (storage rows), so each storage
    /// row contributes `width` consecutive columns — the groups overlapping
    /// `[col0, col0 + width)`.
    fn fill_panel_normal(
        &self,
        dst: &mut [f32],
        ldb: usize,
        pc: usize,
        kc: usize,
        col0: usize,
        width: usize,
        nr: usize,
    ) {
        if ldb != self.cols() || width == 0 {
            return fill_normal_elementwise(self, dst, ldb, pc, kc, col0, width, nr);
        }
        let (m, n_slots) = (self.m(), self.n());
        let (g0, g1) = (col0 / m, (col0 + width - 1) / m);
        for p in 0..kc {
            let (row_masks, row_slots) = self.row(pc + p);
            let dst_row = &mut dst[p * nr..p * nr + width];
            for (g, &gmask) in row_masks.iter().enumerate().take(g1 + 1).skip(g0) {
                let mut mask = gmask;
                if mask == 0 {
                    continue;
                }
                let sbase = g * n_slots;
                let slots = &row_slots[sbase..row_slots.len().min(sbase + n_slots)];
                let gbase = g * m;
                // Writing a kept `+0.0` over the pre-zeroed panel is a
                // bit-level no-op, so kept values store unconditionally;
                // only the straddling edge groups need the column check.
                let interior = gbase >= col0 && gbase + m <= col0 + width;
                let mut rank = 0usize;
                while mask != 0 {
                    let j = mask.trailing_zeros() as usize;
                    mask &= mask - 1;
                    let v = slots[rank];
                    rank += 1;
                    let c = gbase + j;
                    if interior || (c >= col0 && c < col0 + width) {
                        dst_row[c - col0] = v;
                    }
                }
            }
        }
    }

    /// Transposed layout: panel columns are storage rows and the k-steps run
    /// along each row's groups — the frozen-backbone `gemm_nt_nm` shape,
    /// where every output neuron's weight row is N:M sparse along k.
    fn fill_panel_transposed(
        &self,
        dst: &mut [f32],
        ldb: usize,
        pc: usize,
        kc: usize,
        col0: usize,
        width: usize,
        nr: usize,
    ) {
        if ldb != self.cols() || kc == 0 {
            return fill_transposed_elementwise(self, dst, ldb, pc, kc, col0, width, nr);
        }
        let (m, n_slots) = (self.m(), self.n());
        let (g0, g1) = (pc / m, (pc + kc - 1) / m);
        for j in 0..width {
            let (row_masks, row_slots) = self.row(col0 + j);
            for (g, &gmask) in row_masks.iter().enumerate().take(g1 + 1).skip(g0) {
                let mut mask = gmask;
                if mask == 0 {
                    continue;
                }
                let sbase = g * n_slots;
                let slots = &row_slots[sbase..row_slots.len().min(sbase + n_slots)];
                let gbase = g * m;
                let interior = gbase >= pc && gbase + m <= pc + kc;
                let mut rank = 0usize;
                while mask != 0 {
                    let jj = mask.trailing_zeros() as usize;
                    mask &= mask - 1;
                    let v = slots[rank];
                    rank += 1;
                    let c = gbase + jj;
                    if interior || (c >= pc && c < pc + kc) {
                        dst[(c - pc) * nr + j] = v;
                    }
                }
            }
        }
    }
}

thread_local! {
    static PACK_A: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    static PACK_B: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Pack `kc` k-steps × `nc` columns of B into `nr`-wide column panels:
/// `out[panel][p·nr + j]` = B(pc+p, jc + panel·nr + j), zero-padded past
/// `nc`. Panels are disjoint slices of `out`, so when `parallel` is set the
/// fill is carved across the pool (one "row" per panel).
#[allow(clippy::too_many_arguments)]
fn pack_b<S: PackSrc + ?Sized>(
    out: &mut Vec<f32>,
    b: &S,
    ldb: usize,
    layout: Layout,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
    nr: usize,
    parallel: bool,
) {
    let panels = nc.div_ceil(nr);
    let panel_len = kc * nr;
    out.clear();
    out.resize(panels * panel_len, 0.0);
    let fill = |prange: Range<usize>, dst_all: &mut [f32]| {
        for (pi, panel) in prange.enumerate() {
            let j0 = panel * nr;
            let width = nr.min(nc - j0);
            let dst = &mut dst_all[pi * panel_len..(pi + 1) * panel_len];
            // The panel buffer is freshly zeroed above, so the source's fill
            // hook (elementwise default, or a sparsity-aware override that
            // skips zero groups) only needs to store nonzero elements.
            match layout {
                Layout::Normal => b.fill_panel_normal(dst, ldb, pc, kc, jc + j0, width, nr),
                Layout::Transposed => b.fill_panel_transposed(dst, ldb, pc, kc, jc + j0, width, nr),
            }
        }
    };
    // Each task should pack a cache-friendly stretch of panels; packing is
    // bandwidth-bound, so only fan out when there is real work to split.
    let grain = ((1 << 15) / panel_len.max(1)).max(1);
    if parallel && panels > grain {
        par_rows(out, panels, panel_len, grain, fill);
    } else {
        fill(0..panels, out);
    }
}

/// Pack `mc` rows × `kc` k-steps of A into `mr`-tall row panels:
/// `out[panel][p·mr + i]` = A(ic + panel·mr + i, pc+p), zero-padded past
/// `mc`.
#[allow(clippy::too_many_arguments)]
fn pack_a(
    out: &mut Vec<f32>,
    a: &[f32],
    lda: usize,
    layout: Layout,
    ic: usize,
    mc: usize,
    pc: usize,
    kc: usize,
    mr: usize,
) {
    let panels = mc.div_ceil(mr);
    out.clear();
    out.resize(panels * kc * mr, 0.0);
    for panel in 0..panels {
        let i0 = panel * mr;
        let height = mr.min(mc - i0);
        let dst = &mut out[panel * kc * mr..(panel + 1) * kc * mr];
        match layout {
            Layout::Normal => {
                for i in 0..height {
                    let src = &a[(ic + i0 + i) * lda + pc..];
                    for p in 0..kc {
                        dst[p * mr + i] = src[p];
                    }
                }
            }
            Layout::Transposed => {
                for p in 0..kc {
                    let src = &a[(pc + p) * lda + ic + i0..];
                    for i in 0..height {
                        dst[p * mr + i] = src[i];
                    }
                }
            }
        }
    }
}

/// Scalar microkernel: `C[mr×nr] += Ã-panel · B̃-panel` over `kc` k-steps.
/// Fixed-shape accumulator array so LLVM unrolls and vectorises the j loop.
/// Only used by the 6×16 packing geometry.
fn microkernel_scalar(
    kc: usize,
    ap: &[f32],
    bp: &[f32],
    c: &mut [f32],
    ldc: usize,
    mr: usize,
    nr: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for p in 0..kc {
        let b_row = &bp[p * NR..(p + 1) * NR];
        let a_col = &ap[p * MR..(p + 1) * MR];
        for (accs, &av) in acc.iter_mut().zip(a_col) {
            for (s, &bv) in accs.iter_mut().zip(b_row) {
                *s += av * bv;
            }
        }
    }
    for (i, accs) in acc.iter().enumerate().take(mr) {
        let c_row = &mut c[i * ldc..i * ldc + nr];
        for (cv, &s) in c_row.iter_mut().zip(accs.iter()) {
            *cv += s;
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! AVX2+FMA 6×16 microkernel. `unsafe` here is confined to intrinsics
    //! plus the raw C-tile pointer arithmetic the caller has already
    //! bounds-checked; it is only reachable when [`Isa::Avx2`] passed its
    //! runtime support probe.
    use super::{MR, NR};

    /// # Safety
    /// Requires AVX2+FMA. `c` must be valid for reads/writes of `mr` rows ×
    /// `nr` cols at stride `ldc`; `ap`/`bp` must hold `kc` packed MR/NR
    /// panels.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn microkernel(
        kc: usize,
        ap: *const f32,
        bp: *const f32,
        c: *mut f32,
        ldc: usize,
        mr: usize,
        nr: usize,
    ) {
        use std::arch::x86_64::*;
        // MR×NR accumulators: 6 rows × two 8-lane halves = 12 ymm registers,
        // leaving room for the two B loads and the A broadcast.
        let mut acc = [[_mm256_setzero_ps(); 2]; MR];
        for p in 0..kc {
            let b0 = _mm256_loadu_ps(bp.add(p * NR));
            let b1 = _mm256_loadu_ps(bp.add(p * NR + 8));
            for (i, lanes) in acc.iter_mut().enumerate() {
                let av = _mm256_broadcast_ss(&*ap.add(p * MR + i));
                lanes[0] = _mm256_fmadd_ps(av, b0, lanes[0]);
                lanes[1] = _mm256_fmadd_ps(av, b1, lanes[1]);
            }
        }
        if mr == MR && nr == NR {
            for (i, lanes) in acc.iter().enumerate() {
                let cp = c.add(i * ldc);
                _mm256_storeu_ps(cp, _mm256_add_ps(_mm256_loadu_ps(cp), lanes[0]));
                let cp8 = cp.add(8);
                _mm256_storeu_ps(cp8, _mm256_add_ps(_mm256_loadu_ps(cp8), lanes[1]));
            }
        } else {
            // Edge tile: spill the register tile and clamp the write-back.
            let mut tmp = [0.0f32; MR * NR];
            for (i, lanes) in acc.iter().enumerate() {
                _mm256_storeu_ps(tmp.as_mut_ptr().add(i * NR), lanes[0]);
                _mm256_storeu_ps(tmp.as_mut_ptr().add(i * NR + 8), lanes[1]);
            }
            for i in 0..mr {
                for j in 0..nr {
                    *c.add(i * ldc + j) += tmp[i * NR + j];
                }
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod avx512 {
    //! AVX-512F 14×32 microkernel: 14 rows × two zmm halves = 28 of the 32
    //! zmm registers hold C, leaving the two B loads and the A broadcast.
    //! Only reachable when [`Isa::Avx512`] passed its runtime support probe.

    pub const MR: usize = 14;
    pub const NR: usize = 32;

    /// # Safety
    /// Requires AVX-512F. `c` must be valid for reads/writes of `mr` rows ×
    /// `nr` cols at stride `ldc`; `ap`/`bp` must hold `kc` packed 14/32
    /// panels.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn microkernel(
        kc: usize,
        ap: *const f32,
        bp: *const f32,
        c: *mut f32,
        ldc: usize,
        mr: usize,
        nr: usize,
    ) {
        use std::arch::x86_64::*;
        let mut acc = [[_mm512_setzero_ps(); 2]; MR];
        for p in 0..kc {
            let b0 = _mm512_loadu_ps(bp.add(p * NR));
            let b1 = _mm512_loadu_ps(bp.add(p * NR + 16));
            for (i, lanes) in acc.iter_mut().enumerate() {
                let av = _mm512_set1_ps(*ap.add(p * MR + i));
                lanes[0] = _mm512_fmadd_ps(av, b0, lanes[0]);
                lanes[1] = _mm512_fmadd_ps(av, b1, lanes[1]);
            }
        }
        if mr == MR && nr == NR {
            for (i, lanes) in acc.iter().enumerate() {
                let cp = c.add(i * ldc);
                _mm512_storeu_ps(cp, _mm512_add_ps(_mm512_loadu_ps(cp), lanes[0]));
                let cp16 = cp.add(16);
                _mm512_storeu_ps(cp16, _mm512_add_ps(_mm512_loadu_ps(cp16), lanes[1]));
            }
        } else {
            // Edge tile: spill the register tile and clamp the write-back.
            let mut tmp = [0.0f32; MR * NR];
            for (i, lanes) in acc.iter().enumerate() {
                _mm512_storeu_ps(tmp.as_mut_ptr().add(i * NR), lanes[0]);
                _mm512_storeu_ps(tmp.as_mut_ptr().add(i * NR + 16), lanes[1]);
            }
            for i in 0..mr {
                for j in 0..nr {
                    *c.add(i * ldc + j) += tmp[i * NR + j];
                }
            }
        }
    }
}

#[cfg(target_arch = "aarch64")]
mod neon {
    //! NEON 6×16 microkernel: 6 rows × four 4-lane q-registers = 24
    //! accumulators, leaving the four B loads and the A broadcast. Only
    //! reachable when [`Isa::Neon`] passed its runtime support probe.
    use super::{MR, NR};

    /// # Safety
    /// Requires NEON. `c` must be valid for reads/writes of `mr` rows ×
    /// `nr` cols at stride `ldc`; `ap`/`bp` must hold `kc` packed MR/NR
    /// panels.
    #[target_feature(enable = "neon")]
    pub unsafe fn microkernel(
        kc: usize,
        ap: *const f32,
        bp: *const f32,
        c: *mut f32,
        ldc: usize,
        mr: usize,
        nr: usize,
    ) {
        use std::arch::aarch64::*;
        let mut acc = [[vdupq_n_f32(0.0); 4]; MR];
        for p in 0..kc {
            let bq = [
                vld1q_f32(bp.add(p * NR)),
                vld1q_f32(bp.add(p * NR + 4)),
                vld1q_f32(bp.add(p * NR + 8)),
                vld1q_f32(bp.add(p * NR + 12)),
            ];
            for (i, lanes) in acc.iter_mut().enumerate() {
                let av = vdupq_n_f32(*ap.add(p * MR + i));
                for (l, &bv) in lanes.iter_mut().zip(bq.iter()) {
                    *l = vfmaq_f32(*l, av, bv);
                }
            }
        }
        if mr == MR && nr == NR {
            for (i, lanes) in acc.iter().enumerate() {
                let cp = c.add(i * ldc);
                for (q, l) in lanes.iter().enumerate() {
                    let p = cp.add(q * 4);
                    vst1q_f32(p, vaddq_f32(vld1q_f32(p), *l));
                }
            }
        } else {
            // Edge tile: spill the register tile and clamp the write-back.
            let mut tmp = [0.0f32; MR * NR];
            for (i, lanes) in acc.iter().enumerate() {
                for (q, l) in lanes.iter().enumerate() {
                    vst1q_f32(tmp.as_mut_ptr().add(i * NR + q * 4), *l);
                }
            }
            for i in 0..mr {
                for j in 0..nr {
                    *c.add(i * ldc + j) += tmp[i * NR + j];
                }
            }
        }
    }
}

/// Dispatch one register tile to the active arm's microkernel. `isa` has
/// already passed its runtime support probe in [`active_isa`], and the
/// packing geometry matches `isa.tile()`.
#[allow(clippy::too_many_arguments)]
#[inline]
fn microkernel(
    isa: Isa,
    kc: usize,
    ap: &[f32],
    bp: &[f32],
    c: &mut [f32],
    ldc: usize,
    mr: usize,
    nr: usize,
) {
    let (tmr, tnr) = isa.tile();
    debug_assert!(ap.len() >= kc * tmr && bp.len() >= kc * tnr);
    debug_assert!(mr <= tmr && nr <= tnr && mr > 0 && nr > 0);
    debug_assert!(c.len() >= (mr - 1) * ldc + nr);
    debug_assert!(tmr <= MR_MAX && tnr <= NR_MAX);
    match isa {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: feature presence was checked at runtime by `active_isa`;
        // the debug asserts document the bounds the (checked) slice
        // arguments guarantee.
        Isa::Avx2 => unsafe {
            avx2::microkernel(kc, ap.as_ptr(), bp.as_ptr(), c.as_mut_ptr(), ldc, mr, nr);
        },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above, for AVX-512F.
        Isa::Avx512 => unsafe {
            avx512::microkernel(kc, ap.as_ptr(), bp.as_ptr(), c.as_mut_ptr(), ldc, mr, nr);
        },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: as above, for NEON.
        Isa::Neon => unsafe {
            neon::microkernel(kc, ap.as_ptr(), bp.as_ptr(), c.as_mut_ptr(), ldc, mr, nr);
        },
        _ => microkernel_scalar(kc, ap, bp, c, ldc, mr, nr),
    }
}

/// Whether the next packed call will run a SIMD microkernel — i.e. the
/// active ISA arm (after `LX_KERNEL_FORCE_SCALAR` / `LX_KERNEL_ISA` / policy
/// pins) is not the scalar fallback.
pub fn simd_active() -> bool {
    active_isa() != Isa::Scalar
}

/// The packed/tiled backend. Tile sizes (MC/KC/NC) are read from the global
/// [`KernelPolicy`](crate::KernelPolicy) at call time, so an installed policy
/// or autotune result takes effect immediately; the microkernel arm follows
/// [`active_isa`].
pub struct Packed;

impl Packed {
    #[allow(clippy::too_many_arguments)]
    fn driver<S: PackSrc + ?Sized>(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        a_layout: Layout,
        b: &S,
        ldb: usize,
        b_layout: Layout,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
        ep: Epilogue<'_>,
    ) {
        if m == 0 || n == 0 {
            return;
        }
        ep.check(n);
        // Nested call (inside a pool worker) or explicit
        // `with_sequential`: run the whole macro-kernel on this thread.
        let seq = crate::sequential_mode();
        // One beta pass up front; every k-block then accumulates. The extra
        // sweep over C costs O(m·n) against the O(m·n·k) product and only
        // runs for shapes the dispatcher already deemed compute-bound —
        // accepted in exchange for a branch-free microkernel write-back.
        if beta != 1.0 {
            scale_only(c, m, n, ldc, beta);
        }
        if k == 0 {
            // Degenerate product: the "sum" is just the beta pre-scale, so
            // the epilogue becomes a standalone pass.
            apply_epilogue(c, m, n, ldc, ep);
            return;
        }
        let isa = active_isa();
        let (tmr, tnr) = isa.tile();
        let t = tiles();
        let (mc, kc_max, nc_max) = (t.mc.max(tmr), t.kc.max(1), t.nc.max(tnr));
        // Reuse this thread's B̃ buffer across calls. Taken out of the
        // thread-local (not borrowed across the parallel section): the
        // submitting thread helps drain the pool queue while waiting, and a
        // stolen task may re-enter `driver` on this very thread — a held
        // `RefCell` borrow would panic, whereas a nested call here simply
        // finds an empty cell and allocates its own buffer.
        let mut bpack = PACK_B.with(|b| std::mem::take(&mut *b.borrow_mut()));
        let mut jc = 0;
        while jc < n {
            let nc = nc_max.min(n - jc);
            let mut pc = 0;
            while pc < k {
                let kc = kc_max.min(k - pc);
                // The epilogue folds into the write-back of the *final*
                // k-block only, i.e. after the complete accumulated sum.
                let ep_blk = if pc + kc == k { ep } else { Epilogue::None };
                pack_b(&mut bpack, b, ldb, b_layout, pc, kc, jc, nc, tnr, !seq);
                let bpack_ref = &bpack;
                let grain = row_grain(kc, nc).max(tmr);
                let macro_rows = |rows: Range<usize>, chunk: &mut [f32]| {
                    PACK_A.with(|apack| {
                        let apack = &mut *apack.borrow_mut();
                        let mut ic = rows.start;
                        while ic < rows.end {
                            let mcb = mc.min(rows.end - ic);
                            pack_a(apack, a, lda, a_layout, ic, mcb, pc, kc, tmr);
                            for jr in (0..nc).step_by(tnr) {
                                let nr = tnr.min(nc - jr);
                                let bp = &bpack_ref[(jr / tnr) * kc * tnr..];
                                for ir in (0..mcb).step_by(tmr) {
                                    let mr = tmr.min(mcb - ir);
                                    let ap = &apack[(ir / tmr) * kc * tmr..];
                                    let coff = (ic - rows.start + ir) * ldc + jc + jr;
                                    microkernel(isa, kc, ap, bp, &mut chunk[coff..], ldc, mr, nr);
                                }
                            }
                            // Epilogue over the finished mc×nc block, full
                            // rows at a time: the block is still cache-warm,
                            // the work stays on the worker that computed it,
                            // and the long contiguous rows amortise loop
                            // setup the way a 32-wide register tile cannot.
                            if !ep_blk.is_none() {
                                for r in 0..mcb {
                                    let off = (ic - rows.start + r) * ldc + jc;
                                    ep_blk.apply_tile(&mut chunk[off..], ldc, 1, nc, jc);
                                }
                            }
                            ic += mcb;
                        }
                    });
                };
                if seq {
                    macro_rows(0..m, &mut *c);
                } else {
                    par_rows(c, m, ldc, grain, macro_rows);
                }
                pc += kc;
            }
            jc += nc;
        }
        PACK_B.with(|b| *b.borrow_mut() = bpack);
    }
}

impl KernelBackend for Packed {
    fn name(&self) -> &'static str {
        "packed"
    }

    fn gemm(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: &[f32],
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        self.gemm_ep(m, k, n, a, lda, b, ldb, c, ldc, beta, Epilogue::None);
    }

    fn gemm_nt(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: &[f32],
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        self.gemm_nt_ep(m, k, n, a, lda, b, ldb, c, ldc, beta, Epilogue::None);
    }

    fn gemm_tn(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: &[f32],
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        check_view(a.len(), k, m, lda, "gemm_tn: A");
        check_view(b.len(), k, n, ldb, "gemm_tn: B");
        check_view(c.len(), m, n, ldc, "gemm_tn: C");
        self.driver(
            m,
            k,
            n,
            a,
            lda,
            Layout::Transposed,
            b,
            ldb,
            Layout::Normal,
            c,
            ldc,
            beta,
            Epilogue::None,
        );
    }

    /// Fused pack-time decode: B's f16 bits are expanded to f32 while the
    /// B̃ panels are packed, so the decode costs one pass over `k×n` elements
    /// and the microkernel runs unchanged on f32 panels.
    fn gemm_f16(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: &[u16],
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        self.gemm_f16_ep(m, k, n, a, lda, b, ldb, c, ldc, beta, Epilogue::None);
    }

    fn gemm_nt_f16(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: &[u16],
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        self.gemm_nt_f16_ep(m, k, n, a, lda, b, ldb, c, ldc, beta, Epilogue::None);
    }

    /// Fused pack-time dequant: each packed B element is `code · scale`,
    /// resolved from the view's flat index space, so the int8 storage never
    /// materialises as an f32 matrix and the microkernel runs unchanged.
    fn gemm_q8(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: lx_quant::Q8View<'_>,
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        self.gemm_q8_ep(m, k, n, a, lda, b, ldb, c, ldc, beta, Epilogue::None);
    }

    fn gemm_nt_q8(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: lx_quant::Q8View<'_>,
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        self.gemm_nt_q8_ep(m, k, n, a, lda, b, ldb, c, ldc, beta, Epilogue::None);
    }

    fn gemm_q4(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: lx_quant::Q4View<'_>,
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        self.gemm_q4_ep(m, k, n, a, lda, b, ldb, c, ldc, beta, Epilogue::None);
    }

    fn gemm_nt_q4(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: lx_quant::Q4View<'_>,
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        self.gemm_nt_q4_ep(m, k, n, a, lda, b, ldb, c, ldc, beta, Epilogue::None);
    }

    /// Fused pack-time expansion with zero-group skipping: compacted N:M
    /// groups scatter their kept nonzeros straight into the pre-zeroed B̃
    /// panels (see the [`PackSrc`] impl on the view), so the dense f32 B is
    /// never materialised, pack traffic scales with nnz, and the microkernel
    /// runs unchanged.
    fn gemm_nm(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: lx_quant::NmView<'_>,
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        self.gemm_nm_ep(m, k, n, a, lda, b, ldb, c, ldc, beta, Epilogue::None);
    }

    fn gemm_nt_nm(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: lx_quant::NmView<'_>,
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        self.gemm_nt_nm_ep(m, k, n, a, lda, b, ldb, c, ldc, beta, Epilogue::None);
    }

    fn gemm_ep(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: &[f32],
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
        ep: Epilogue<'_>,
    ) {
        check_view(a.len(), m, k, lda, "gemm: A");
        check_view(b.len(), k, n, ldb, "gemm: B");
        check_view(c.len(), m, n, ldc, "gemm: C");
        self.driver(
            m,
            k,
            n,
            a,
            lda,
            Layout::Normal,
            b,
            ldb,
            Layout::Normal,
            c,
            ldc,
            beta,
            ep,
        );
    }

    fn gemm_nt_ep(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: &[f32],
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
        ep: Epilogue<'_>,
    ) {
        check_view(a.len(), m, k, lda, "gemm_nt: A");
        check_view(b.len(), n, k, ldb, "gemm_nt: B");
        check_view(c.len(), m, n, ldc, "gemm_nt: C");
        self.driver(
            m,
            k,
            n,
            a,
            lda,
            Layout::Normal,
            b,
            ldb,
            Layout::Transposed,
            c,
            ldc,
            beta,
            ep,
        );
    }

    fn gemm_f16_ep(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: &[u16],
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
        ep: Epilogue<'_>,
    ) {
        check_view(a.len(), m, k, lda, "gemm_f16: A");
        check_view(b.len(), k, n, ldb, "gemm_f16: B");
        check_view(c.len(), m, n, ldc, "gemm_f16: C");
        self.driver(
            m,
            k,
            n,
            a,
            lda,
            Layout::Normal,
            b,
            ldb,
            Layout::Normal,
            c,
            ldc,
            beta,
            ep,
        );
    }

    fn gemm_nt_f16_ep(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: &[u16],
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
        ep: Epilogue<'_>,
    ) {
        check_view(a.len(), m, k, lda, "gemm_nt_f16: A");
        check_view(b.len(), n, k, ldb, "gemm_nt_f16: B");
        check_view(c.len(), m, n, ldc, "gemm_nt_f16: C");
        self.driver(
            m,
            k,
            n,
            a,
            lda,
            Layout::Normal,
            b,
            ldb,
            Layout::Transposed,
            c,
            ldc,
            beta,
            ep,
        );
    }

    fn gemm_q8_ep(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: lx_quant::Q8View<'_>,
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
        ep: Epilogue<'_>,
    ) {
        check_view(a.len(), m, k, lda, "gemm_q8: A");
        check_view(b.len(), k, n, ldb, "gemm_q8: B");
        check_view(c.len(), m, n, ldc, "gemm_q8: C");
        self.driver(
            m,
            k,
            n,
            a,
            lda,
            Layout::Normal,
            &b,
            ldb,
            Layout::Normal,
            c,
            ldc,
            beta,
            ep,
        );
    }

    fn gemm_nt_q8_ep(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: lx_quant::Q8View<'_>,
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
        ep: Epilogue<'_>,
    ) {
        check_view(a.len(), m, k, lda, "gemm_nt_q8: A");
        check_view(b.len(), n, k, ldb, "gemm_nt_q8: B");
        check_view(c.len(), m, n, ldc, "gemm_nt_q8: C");
        self.driver(
            m,
            k,
            n,
            a,
            lda,
            Layout::Normal,
            &b,
            ldb,
            Layout::Transposed,
            c,
            ldc,
            beta,
            ep,
        );
    }

    fn gemm_q4_ep(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: lx_quant::Q4View<'_>,
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
        ep: Epilogue<'_>,
    ) {
        check_view(a.len(), m, k, lda, "gemm_q4: A");
        check_view(b.len(), k, n, ldb, "gemm_q4: B");
        check_view(c.len(), m, n, ldc, "gemm_q4: C");
        self.driver(
            m,
            k,
            n,
            a,
            lda,
            Layout::Normal,
            &b,
            ldb,
            Layout::Normal,
            c,
            ldc,
            beta,
            ep,
        );
    }

    fn gemm_nt_q4_ep(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: lx_quant::Q4View<'_>,
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
        ep: Epilogue<'_>,
    ) {
        check_view(a.len(), m, k, lda, "gemm_nt_q4: A");
        check_view(b.len(), n, k, ldb, "gemm_nt_q4: B");
        check_view(c.len(), m, n, ldc, "gemm_nt_q4: C");
        self.driver(
            m,
            k,
            n,
            a,
            lda,
            Layout::Normal,
            &b,
            ldb,
            Layout::Transposed,
            c,
            ldc,
            beta,
            ep,
        );
    }

    fn gemm_nm_ep(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: lx_quant::NmView<'_>,
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
        ep: Epilogue<'_>,
    ) {
        check_view(a.len(), m, k, lda, "gemm_nm: A");
        check_view(b.len(), k, n, ldb, "gemm_nm: B");
        check_view(c.len(), m, n, ldc, "gemm_nm: C");
        self.driver(
            m,
            k,
            n,
            a,
            lda,
            Layout::Normal,
            &b,
            ldb,
            Layout::Normal,
            c,
            ldc,
            beta,
            ep,
        );
    }

    fn gemm_nt_nm_ep(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: lx_quant::NmView<'_>,
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
        ep: Epilogue<'_>,
    ) {
        check_view(a.len(), m, k, lda, "gemm_nt_nm: A");
        check_view(b.len(), n, k, ldb, "gemm_nt_nm: B");
        check_view(c.len(), m, n, ldc, "gemm_nt_nm: C");
        self.driver(
            m,
            k,
            n,
            a,
            lda,
            Layout::Normal,
            &b,
            ldb,
            Layout::Transposed,
            c,
            ldc,
            beta,
            ep,
        );
    }
}
