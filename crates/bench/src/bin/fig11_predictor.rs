//! **Figure 11**: (a) fine-tuning loss curves — Long Exposure's predicted
//! patterns vs random attention patterns vs random MLP patterns; (b)
//! predictor quality: per-layer recall/precision and an ASCII rendering of
//! predicted vs ground-truth masks.
//!
//! Paper: random patterns visibly hurt convergence; predicted patterns track
//! the dense loss; MLP predictor recall averages 96.35%.

use long_exposure::engine::StepMode;
use long_exposure::exposer::Exposer;
use lx_bench::{calibrated_engine, header, row, SIM_BLOCK};
use lx_model::{prompt_aware_targets, CaptureConfig, ModelConfig};
use lx_peft::PeftMethod;

fn main() {
    let cli = lx_bench::BenchCli::parse("fig11_predictor");
    let (batch, seq, steps) = (2, 128, 80);
    let cfg = ModelConfig::opt_sim_small();
    println!(
        "== Fig. 11a: loss curves ({}, batch {batch}, seq {seq}, {steps} steps) ==\n",
        cfg.name
    );

    let arms = [
        ("dense", StepMode::Dense),
        ("long-exposure", StepMode::Sparse),
        ("oracle", StepMode::Oracle),
        ("random-attn", StepMode::RandomAttn),
        ("random-mlp", StepMode::RandomMlp),
    ];
    let mut curves: Vec<(String, Vec<f32>)> = Vec::new();
    for (name, mode) in arms {
        let (mut engine, mut batcher) =
            calibrated_engine(cfg.clone(), PeftMethod::lora_default(), batch, seq, 42);
        // Train embeddings too so the loss can actually move on this scale,
        // and cycle a fixed 4-batch set so convergence differences show.
        engine.model.embedding.tokens.trainable = true;
        let fixed: Vec<Vec<u32>> = (0..4).map(|_| batcher.next_batch(batch, seq)).collect();
        let mut opt = lx_model::AdamW::new(3e-3, 0.0);
        let mut losses = Vec::with_capacity(steps);
        for i in 0..steps {
            let ids = &fixed[i % fixed.len()];
            let targets = prompt_aware_targets(ids, batch, seq, 0);
            let s = engine.train_step_mode(ids, &targets, batch, seq, &mut opt, mode);
            losses.push(s.loss);
        }
        curves.push((name.to_string(), losses));
    }
    header(&[
        "step",
        "dense",
        "long-exposure",
        "oracle",
        "random-attn",
        "random-mlp",
    ]);
    for i in (0..steps).step_by(10).chain([steps - 1]) {
        let mut cells = vec![i.to_string()];
        for (_, c) in &curves {
            cells.push(format!("{:.3}", c[i]));
        }
        row(&cells);
    }
    let final_of = |name: &str| {
        curves
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| *c.last().unwrap())
            .unwrap()
    };
    println!(
        "\nfinal losses: dense {:.3} | long-exposure {:.3} | oracle {:.3} | random-attn {:.3} | random-mlp {:.3}",
        final_of("dense"),
        final_of("long-exposure"),
        final_of("oracle"),
        final_of("random-attn"),
        final_of("random-mlp"),
    );
    println!("shape to check: long-exposure tracks dense (and the oracle upper bound); random arms converge worse.\n");

    // ---- (b): predictor quality + visualisation ----
    println!("== Fig. 11b: predictor quality ==\n");
    let (mut engine, mut batcher) =
        calibrated_engine(cfg.clone(), PeftMethod::lora_default(), batch, seq, 42);
    let report = {
        // Recalibrate to fetch the report (calibrated_engine discards it).
        let batches: Vec<(Vec<u32>, usize, usize)> = (0..2)
            .map(|_| (batcher.next_batch(batch, seq), batch, seq))
            .collect();
        engine.calibrate(&batches)
    };
    header(&[
        "layer",
        "attn recall",
        "attn precision",
        "mlp recall",
        "mlp precision",
    ]);
    for l in 0..report.attn_recall.len() {
        row(&[
            l.to_string(),
            format!("{:.1}%", 100.0 * report.attn_recall[l]),
            format!("{:.1}%", 100.0 * report.attn_precision[l]),
            format!("{:.1}%", 100.0 * report.mlp_recall[l]),
            format!("{:.1}%", 100.0 * report.mlp_precision[l]),
        ]);
    }
    println!(
        "\nmean MLP recall: {:.2}% (paper reports 96.35%)\n",
        100.0 * report.mean_mlp_recall()
    );

    // Visualise ground-truth vs predicted mask for layer 0, head 0.
    let ids = batcher.next_batch(batch, seq);
    let caps = engine
        .model
        .execute(lx_model::StepRequest::capture(
            &ids,
            batch,
            seq,
            CaptureConfig {
                attn: true,
                mlp: false,
            },
        ))
        .captures
        .expect("capture mode records captures");
    let exposer = Exposer::new(SIM_BLOCK, 8.0 / seq as f32, 0.3);
    let probs = caps[0].attn_probs.as_ref().unwrap();
    let target = &exposer.attention_head_masks(probs, batch, cfg.n_heads, seq)[0];
    println!("layer 0 head 0 — target (left) vs prediction (right):");
    let x = caps[0].block_input.as_ref().unwrap();
    let predicted = &engine.predict_attention_masks(0, x, batch, seq)[0];
    let ta = target.to_ascii();
    let pa = predicted.to_ascii();
    for (lt, lp) in ta.lines().zip(pa.lines()) {
        println!("{lt}    {lp}");
    }
    cli.finish();
}
