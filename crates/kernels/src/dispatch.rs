//! Size-aware backend dispatch and the tile/threshold policy.
//!
//! ## Dispatch policy
//!
//! The packed backend pays for its speed up front: packing traffic of
//! `O(m·k + k·n)` writes per k-block plus the beta pass over C. For the
//! Fig. 12 operator shapes (hundreds × hundreds and up) that cost is noise;
//! for the many small per-block GEMMs the sparse operators issue (e.g.
//! `32×64×32` score blocks) it is not. The [`Auto`] dispatcher therefore
//! routes a call to [`Packed`] only when its FLOP count clears
//! [`KernelPolicy::min_flops_packed`] *and* the inner/output dimensions are
//! wide enough (`k ≥ 8`, `n ≥ NR/2`) for panels to amortise; everything else
//! takes the [`Reference`] loops, which have zero setup cost.
//!
//! The policy lives in process-wide atomics so `lx-runtime` can install a
//! cache-model-derived [`TileConfig`] (see `lx_runtime::kernel_policy`) and
//! [`autotune`] can refine the crossover threshold from a one-time measured
//! probe — both without synchronisation on the hot path.

use crate::backend::{KernelBackend, Reference};
use crate::epilogue::Epilogue;
use crate::isa::Isa;
use crate::observe::Observed;
use crate::packed::{Packed, NR};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Cache-blocking tile shape for the packed backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileConfig {
    /// Rows of A packed per block (Ã sized `mc × kc`, targeting L2).
    pub mc: usize,
    /// K-depth per block (B̃ panel of `kc × NR` targeting L1).
    pub kc: usize,
    /// Columns of B packed per block (B̃ sized `kc × nc`).
    pub nc: usize,
}

impl Default for TileConfig {
    /// Conservative defaults for a ~32 KiB L1d / ≥256 KiB L2 core:
    /// `kc·NR·4B = 16 KiB` (half of L1d for B̃), `mc·kc·4B = 96 KiB` of Ã.
    fn default() -> Self {
        TileConfig {
            mc: 96,
            kc: 256,
            nc: 2048,
        }
    }
}

/// Dispatch policy: tile shape plus the packed-vs-reference crossover, plus
/// an optional microkernel ISA pin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelPolicy {
    pub tiles: TileConfig,
    /// Minimum `2·m·k·n` FLOPs for a call to take the packed path.
    pub min_flops_packed: u64,
    /// Pin the microkernel to a specific [`Isa`] arm (`None` = widest
    /// detected). `LX_KERNEL_FORCE_SCALAR` and `LX_KERNEL_ISA` still take
    /// precedence over the pin — see [`crate::active_isa`].
    pub isa: Option<Isa>,
}

impl Default for KernelPolicy {
    fn default() -> Self {
        KernelPolicy {
            tiles: TileConfig::default(),
            // ~2·64³: below this the packing passes rival the math itself.
            min_flops_packed: 1 << 19,
            isa: None,
        }
    }
}

static MC: AtomicUsize = AtomicUsize::new(96);
static KC: AtomicUsize = AtomicUsize::new(256);
static NC: AtomicUsize = AtomicUsize::new(2048);
static MIN_FLOPS: AtomicU64 = AtomicU64::new(1 << 19);
static ISA_PIN: AtomicUsize = AtomicUsize::new(0); // Isa wire code; 0 = none

/// Install a dispatch policy process-wide. Takes effect on the next kernel
/// call; safe to call at any time (benches install a tuned policy up front,
/// tests leave the defaults).
pub fn install_policy(p: KernelPolicy) {
    MC.store(p.tiles.mc.max(1), Ordering::Relaxed);
    KC.store(p.tiles.kc.max(1), Ordering::Relaxed);
    NC.store(p.tiles.nc.max(NR), Ordering::Relaxed);
    MIN_FLOPS.store(p.min_flops_packed, Ordering::Relaxed);
    ISA_PIN.store(p.isa.map_or(0, |i| i.code()), Ordering::Relaxed);
}

/// The currently installed policy.
pub fn current_policy() -> KernelPolicy {
    KernelPolicy {
        tiles: tiles(),
        min_flops_packed: MIN_FLOPS.load(Ordering::Relaxed),
        isa: policy_isa(),
    }
}

/// The ISA pin of the installed policy, if any.
pub(crate) fn policy_isa() -> Option<Isa> {
    Isa::from_code(ISA_PIN.load(Ordering::Relaxed))
}

pub(crate) fn tiles() -> TileConfig {
    TileConfig {
        mc: MC.load(Ordering::Relaxed),
        kc: KC.load(Ordering::Relaxed),
        nc: NC.load(Ordering::Relaxed),
    }
}

/// Whether `LX_KERNEL_FORCE_SCALAR=1` is set: the packed backend then skips
/// its SIMD microkernel and uses the fixed-shape scalar kernel everywhere.
/// Read once — the CI fallback job sets it before the process starts.
pub fn force_scalar() -> bool {
    static FORCE: OnceLock<bool> = OnceLock::new();
    *FORCE.get_or_init(|| std::env::var("LX_KERNEL_FORCE_SCALAR").as_deref() == Ok("1"))
}

/// The three backend singletons.
pub static REFERENCE: Reference = Reference;
pub static PACKED: Packed = Packed;
pub static AUTO: Auto = Auto;

// Instrumented wrappers around the singletons: [`backend`] hands these out so
// every dispatched GEMM lands in the `kernel.gemm.*` metrics. Raw singletons
// stay available for differential tests and benches that want zero overhead.
static OBS_REFERENCE: Observed = Observed::new(&REFERENCE);
static OBS_PACKED: Observed = Observed::new(&PACKED);
static OBS_AUTO: Observed = Observed::new(&AUTO);

/// Size-aware dispatcher: picks [`Packed`] or [`Reference`] per call.
pub struct Auto;

#[inline]
fn pick(m: usize, k: usize, n: usize) -> &'static dyn KernelBackend {
    let flops = 2 * (m as u64) * (k as u64) * (n as u64);
    if flops >= MIN_FLOPS.load(Ordering::Relaxed) && k >= 8 && n >= NR / 2 {
        &PACKED
    } else {
        &REFERENCE
    }
}

impl KernelBackend for Auto {
    fn name(&self) -> &'static str {
        "auto"
    }

    fn gemm(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: &[f32],
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        pick(m, k, n).gemm(m, k, n, a, lda, b, ldb, c, ldc, beta)
    }

    fn gemm_nt(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: &[f32],
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        pick(m, k, n).gemm_nt(m, k, n, a, lda, b, ldb, c, ldc, beta)
    }

    fn gemm_tn(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: &[f32],
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        pick(m, k, n).gemm_tn(m, k, n, a, lda, b, ldb, c, ldc, beta)
    }

    fn gemm_f16(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: &[u16],
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        pick(m, k, n).gemm_f16(m, k, n, a, lda, b, ldb, c, ldc, beta)
    }

    fn gemm_nt_f16(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: &[u16],
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        pick(m, k, n).gemm_nt_f16(m, k, n, a, lda, b, ldb, c, ldc, beta)
    }

    fn gemm_q8(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: lx_quant::Q8View<'_>,
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        pick(m, k, n).gemm_q8(m, k, n, a, lda, b, ldb, c, ldc, beta)
    }

    fn gemm_nt_q8(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: lx_quant::Q8View<'_>,
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        pick(m, k, n).gemm_nt_q8(m, k, n, a, lda, b, ldb, c, ldc, beta)
    }

    fn gemm_q4(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: lx_quant::Q4View<'_>,
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        pick(m, k, n).gemm_q4(m, k, n, a, lda, b, ldb, c, ldc, beta)
    }

    fn gemm_nt_q4(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: lx_quant::Q4View<'_>,
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        pick(m, k, n).gemm_nt_q4(m, k, n, a, lda, b, ldb, c, ldc, beta)
    }

    fn gemm_nm(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: lx_quant::NmView<'_>,
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        pick(m, k, n).gemm_nm(m, k, n, a, lda, b, ldb, c, ldc, beta)
    }

    fn gemm_nt_nm(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: lx_quant::NmView<'_>,
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        pick(m, k, n).gemm_nt_nm(m, k, n, a, lda, b, ldb, c, ldc, beta)
    }

    fn gemm_ep(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: &[f32],
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
        ep: Epilogue<'_>,
    ) {
        pick(m, k, n).gemm_ep(m, k, n, a, lda, b, ldb, c, ldc, beta, ep)
    }

    fn gemm_nt_ep(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: &[f32],
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
        ep: Epilogue<'_>,
    ) {
        pick(m, k, n).gemm_nt_ep(m, k, n, a, lda, b, ldb, c, ldc, beta, ep)
    }

    fn gemm_f16_ep(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: &[u16],
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
        ep: Epilogue<'_>,
    ) {
        pick(m, k, n).gemm_f16_ep(m, k, n, a, lda, b, ldb, c, ldc, beta, ep)
    }

    fn gemm_nt_f16_ep(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: &[u16],
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
        ep: Epilogue<'_>,
    ) {
        pick(m, k, n).gemm_nt_f16_ep(m, k, n, a, lda, b, ldb, c, ldc, beta, ep)
    }

    fn gemm_q8_ep(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: lx_quant::Q8View<'_>,
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
        ep: Epilogue<'_>,
    ) {
        pick(m, k, n).gemm_q8_ep(m, k, n, a, lda, b, ldb, c, ldc, beta, ep)
    }

    fn gemm_nt_q8_ep(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: lx_quant::Q8View<'_>,
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
        ep: Epilogue<'_>,
    ) {
        pick(m, k, n).gemm_nt_q8_ep(m, k, n, a, lda, b, ldb, c, ldc, beta, ep)
    }

    fn gemm_q4_ep(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: lx_quant::Q4View<'_>,
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
        ep: Epilogue<'_>,
    ) {
        pick(m, k, n).gemm_q4_ep(m, k, n, a, lda, b, ldb, c, ldc, beta, ep)
    }

    fn gemm_nt_q4_ep(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: lx_quant::Q4View<'_>,
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
        ep: Epilogue<'_>,
    ) {
        pick(m, k, n).gemm_nt_q4_ep(m, k, n, a, lda, b, ldb, c, ldc, beta, ep)
    }

    fn gemm_nm_ep(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: lx_quant::NmView<'_>,
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
        ep: Epilogue<'_>,
    ) {
        pick(m, k, n).gemm_nm_ep(m, k, n, a, lda, b, ldb, c, ldc, beta, ep)
    }

    fn gemm_nt_nm_ep(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: lx_quant::NmView<'_>,
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
        ep: Epilogue<'_>,
    ) {
        pick(m, k, n).gemm_nt_nm_ep(m, k, n, a, lda, b, ldb, c, ldc, beta, ep)
    }
}

/// Resolve the process-wide backend once: `LX_KERNEL_BACKEND` ∈
/// `reference | packed | auto` (default `auto`; anything else warns loudly
/// and falls back to `auto` so a typo can't silently un-pin a benchmark).
/// `LX_KERNEL_AUTOTUNE=1` additionally runs the one-time [`autotune`] probe
/// before the first dispatch.
pub fn backend() -> &'static dyn KernelBackend {
    static CHOICE: OnceLock<&'static dyn KernelBackend> = OnceLock::new();
    *CHOICE.get_or_init(|| {
        if std::env::var("LX_KERNEL_AUTOTUNE").as_deref() == Ok("1") {
            autotune();
        }
        let name = std::env::var("LX_KERNEL_BACKEND").unwrap_or_else(|_| "auto".into());
        match name.as_str() {
            "reference" => &OBS_REFERENCE,
            "packed" => &OBS_PACKED,
            "auto" => &OBS_AUTO,
            other => {
                eprintln!(
                    "lx-kernels: unknown LX_KERNEL_BACKEND '{other}' \
                     (expected reference|packed|auto); using auto"
                );
                &OBS_AUTO
            }
        }
    })
}

/// Name of the backend [`Auto`] would route an `m×k×n` call to right now
/// (benches report this next to their measurements).
pub fn auto_choice(m: usize, k: usize, n: usize) -> &'static str {
    pick(m, k, n).name()
}

/// Look a backend up by name (benches and differential tests).
pub fn backend_by_name(name: &str) -> Option<&'static dyn KernelBackend> {
    match name {
        "reference" => Some(&REFERENCE),
        "packed" => Some(&PACKED),
        "auto" => Some(&AUTO),
        _ => None,
    }
}

/// One-time measured probe: find the GEMM size where the packed backend
/// overtakes the reference loops and install that crossover as
/// [`KernelPolicy::min_flops_packed`].
///
/// The probe walks a size ladder spanning the tiny→medium shape classes and
/// measures **both** forward variants (`nn` and `nt`), taking the more
/// conservative of the two crossovers. It runs under the live configuration —
/// the [`active_isa`](crate::active_isa) microkernel arm and the current
/// `LX_THREADS` pool width — which is exactly why the persisted policy
/// (below) is keyed by `(isa, threads)`.
///
/// Persistence: when `LX_KERNEL_POLICY=<path>` is set, a policy previously
/// saved there is loaded instead of re-probing **iff** its `(isa, threads)`
/// key matches the running process (serve restarts skip the probe); after a
/// fresh probe the result is written back to that path. Costs a few
/// milliseconds when it does probe; benches call it explicitly, library
/// users opt in via `LX_KERNEL_AUTOTUNE=1` (checked in [`backend`]).
/// Returns the installed policy.
pub fn autotune() -> KernelPolicy {
    static RESULT: OnceLock<KernelPolicy> = OnceLock::new();
    *RESULT.get_or_init(|| {
        let isa = crate::isa::active_isa();
        let threads = lx_parallel::pool().threads();
        let persist = std::env::var("LX_KERNEL_POLICY")
            .ok()
            .map(std::path::PathBuf::from);
        if let Some(path) = &persist {
            match load_policy_json(path) {
                Some(p) if p.isa == isa && p.threads == threads => {
                    install_policy(p.policy);
                    eprintln!(
                        "lx-kernels: loaded kernel policy from {} (tuned for {}, {} threads); \
                         skipping the autotune probe",
                        path.display(),
                        isa.name(),
                        threads
                    );
                    return p.policy;
                }
                Some(p) => {
                    eprintln!(
                        "lx-kernels: persisted policy {} was tuned for ({}, {} threads) but \
                         this process runs ({}, {} threads); re-probing",
                        path.display(),
                        p.isa.name(),
                        p.threads,
                        isa.name(),
                        threads
                    );
                }
                None => {}
            }
        }
        let mut policy = current_policy();
        let mut crossover: Option<usize> = None;
        for s in [32usize, 48, 64, 96, 128, 192] {
            // No exact zeros: Reference skips `av == 0.0` in its inner loop,
            // which would bias the measured crossover against Packed.
            let a: Vec<f32> = (0..s * s).map(|i| (i % 7) as f32 * 0.25 - 0.875).collect();
            let b = a.clone();
            // The 2:4 structured-sparse arm of the same B, probed alongside
            // the dense shapes: its packed path has a different cost profile
            // (group-walking pack that skips zero groups) so the crossover
            // must hold for it too before the threshold is lowered.
            let (nm_vals, nm_masks) = lx_quant::nm::encode(&b, s, s, 2, 4);
            let nm = lx_quant::NmView::new(&nm_vals, &nm_masks, s, s, 2, 4);
            let mut c = vec![0.0f32; s * s];
            let time = |backend: &dyn KernelBackend, c: &mut [f32], variant: u8| {
                let run = |c: &mut [f32]| match variant {
                    0 => backend.gemm(s, s, s, &a, s, &b, s, c, s, 0.0),
                    1 => backend.gemm_nt(s, s, s, &a, s, &b, s, c, s, 0.0),
                    _ => backend.gemm_nt_nm(s, s, s, &a, s, nm, s, c, s, 0.0),
                };
                run(c); // warm
                let t0 = std::time::Instant::now();
                for _ in 0..3 {
                    run(c);
                }
                t0.elapsed()
            };
            // Packed must win every probed forward shape at this size: the
            // nn, nt, and nt-nm crossovers differ (the nt reference is a
            // dot-product loop with no packing to amortise; the nm reference
            // decodes rows on load), and dispatch has one threshold.
            let wins_nn = time(&PACKED, &mut c, 0) <= time(&REFERENCE, &mut c, 0);
            let wins_nt = time(&PACKED, &mut c, 1) <= time(&REFERENCE, &mut c, 1);
            let wins_nm = time(&PACKED, &mut c, 2) <= time(&REFERENCE, &mut c, 2);
            if wins_nn && wins_nt && wins_nm {
                crossover = Some(s);
                break;
            }
        }
        if let Some(s) = crossover {
            policy.min_flops_packed = 2 * (s as u64).pow(3);
        }
        install_policy(policy);
        if let Some(path) = &persist {
            match save_policy_json(path, policy, isa, threads) {
                Ok(()) => eprintln!(
                    "lx-kernels: saved autotuned kernel policy to {} ({}, {} threads)",
                    path.display(),
                    isa.name(),
                    threads
                ),
                Err(e) => eprintln!(
                    "lx-kernels: could not save kernel policy to {}: {e}",
                    path.display()
                ),
            }
        }
        policy
    })
}

/// The B-operand storage dtypes the autotune probe covered when a policy was
/// saved. Stored in the persisted JSON so a policy tuned before a new
/// storage arm existed (e.g. a version-1 file predating `nm-2:4`) is
/// recognisably stale: [`invalidate_stale_policy`] deletes it and the next
/// [`autotune`] re-probes with the full arm set.
pub const POLICY_DTYPES: [&str; 5] = ["f32", "f16", "i8-block", "nf4-block", "nm-2:4"];

/// A policy loaded from disk, together with the `(isa, threads)` key it was
/// tuned under and the dtype arms its probe covered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistedPolicy {
    pub policy: KernelPolicy,
    pub isa: Isa,
    pub threads: usize,
    /// Dtype names (see [`POLICY_DTYPES`]) the probe covered.
    pub dtypes: Vec<String>,
}

impl PersistedPolicy {
    /// Whether the persisted probe covered B operands of storage `dtype`.
    pub fn covers_dtype(&self, dtype: &str) -> bool {
        self.dtypes.iter().any(|d| d == dtype)
    }
}

/// Delete a persisted autotune policy (at `LX_KERNEL_POLICY`) whose probe
/// did not cover `dtype` — called when a model re-demotes its frozen storage
/// to a dtype the saved crossover was never measured for. A file that fails
/// to parse (old version, corrupt) is also removed: it would be skipped by
/// [`load_policy_json`] anyway, and deleting it makes the re-probe explicit.
/// Returns `true` when a stale file was removed.
pub fn invalidate_stale_policy(dtype: &str) -> bool {
    let Ok(path) = std::env::var("LX_KERNEL_POLICY") else {
        return false;
    };
    let path = std::path::PathBuf::from(path);
    if !path.exists() {
        return false;
    }
    let stale = match load_policy_json(&path) {
        Some(p) => !p.covers_dtype(dtype),
        None => true,
    };
    if stale {
        if let Err(e) = std::fs::remove_file(&path) {
            eprintln!(
                "lx-kernels: could not remove stale kernel policy {}: {e}",
                path.display()
            );
            return false;
        }
        eprintln!(
            "lx-kernels: removed persisted kernel policy {} (not tuned for dtype {dtype}); \
             the next autotune will re-probe",
            path.display()
        );
    }
    stale
}

/// Write `policy` (plus its tuning key) to `path` as a small JSON document.
/// Hand-rolled writer — the workspace deliberately has no serde dependency.
pub fn save_policy_json(
    path: &std::path::Path,
    policy: KernelPolicy,
    isa: Isa,
    threads: usize,
) -> std::io::Result<()> {
    let json = format!(
        "{{\n  \"version\": 2,\n  \"isa\": \"{}\",\n  \"threads\": {},\n  \"dtypes\": \"{}\",\n  \
         \"mc\": {},\n  \"kc\": {},\n  \"nc\": {},\n  \"min_flops_packed\": {}\n}}\n",
        isa.name(),
        threads,
        // Space-separated: the hand-rolled json_raw scanner treats ',' as a
        // value terminator, so commas inside the string would truncate it.
        POLICY_DTYPES.join(" "),
        policy.tiles.mc,
        policy.tiles.kc,
        policy.tiles.nc,
        policy.min_flops_packed
    );
    std::fs::write(path, json)
}

/// Read a policy previously written by [`save_policy_json`]. Returns `None`
/// (never errors) on a missing file, malformed JSON, or an unknown version —
/// including version-1 files from before the probe covered the `nm-2:4` arm
/// — so a stale or corrupt file degrades to a re-probe.
pub fn load_policy_json(path: &std::path::Path) -> Option<PersistedPolicy> {
    let text = std::fs::read_to_string(path).ok()?;
    if json_u64(&text, "version")? != 2 {
        return None;
    }
    let isa = Isa::parse(&json_str(&text, "isa")?)?;
    let threads = json_u64(&text, "threads")? as usize;
    let dtypes: Vec<String> = json_str(&text, "dtypes")?
        .split_whitespace()
        .map(str::to_string)
        .collect();
    let policy = KernelPolicy {
        tiles: TileConfig {
            mc: json_u64(&text, "mc")? as usize,
            kc: json_u64(&text, "kc")? as usize,
            nc: json_u64(&text, "nc")? as usize,
        },
        min_flops_packed: json_u64(&text, "min_flops_packed")?,
        isa: None,
    };
    if policy.tiles.mc == 0 || policy.tiles.kc == 0 || policy.tiles.nc == 0 || threads == 0 {
        return None;
    }
    Some(PersistedPolicy {
        policy,
        isa,
        threads,
        dtypes,
    })
}

/// Raw value token following `"key":` in a flat JSON object.
fn json_raw<'a>(text: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\"");
    let after = &text[text.find(&needle)? + needle.len()..];
    let after = after.trim_start();
    let after = after.strip_prefix(':')?.trim_start();
    let end = after.find([',', '}', '\n']).unwrap_or(after.len());
    Some(after[..end].trim())
}

fn json_u64(text: &str, key: &str) -> Option<u64> {
    json_raw(text, key)?.parse().ok()
}

fn json_str(text: &str, key: &str) -> Option<String> {
    let raw = json_raw(text, key)?;
    let inner = raw.strip_prefix('"')?.strip_suffix('"')?;
    Some(inner.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_routes_small_to_reference() {
        assert_eq!(pick(4, 4, 4).name(), "reference");
        assert_eq!(pick(512, 512, 512).name(), "packed");
        // Narrow K or N never packs, whatever the FLOP count.
        assert_eq!(pick(100_000, 4, 100).name(), "reference");
        assert_eq!(pick(100_000, 100, 4).name(), "reference");
    }

    #[test]
    fn policy_roundtrip() {
        // Run the (memoized) autotune first so no other mutator can race the
        // install/read pair below.
        let _ = autotune();
        let before = current_policy();
        let p = KernelPolicy {
            tiles: TileConfig {
                mc: 48,
                kc: 128,
                nc: 512,
            },
            min_flops_packed: 1234,
            isa: Some(Isa::Scalar),
        };
        install_policy(p);
        assert_eq!(current_policy(), p);
        install_policy(before);
    }

    #[test]
    fn policy_json_roundtrip() {
        let path = std::env::temp_dir().join(format!("lx_policy_test_{}.json", std::process::id()));
        let p = KernelPolicy {
            tiles: TileConfig {
                mc: 72,
                kc: 192,
                nc: 1024,
            },
            min_flops_packed: 2 * 96u64.pow(3),
            isa: None,
        };
        save_policy_json(&path, p, Isa::Avx2, 4).unwrap();
        let loaded = load_policy_json(&path).unwrap();
        assert_eq!(loaded.policy, p);
        assert_eq!(loaded.isa, Isa::Avx2);
        assert_eq!(loaded.threads, 4);
        // A freshly saved policy covers every probed dtype arm.
        for dt in POLICY_DTYPES {
            assert!(loaded.covers_dtype(dt), "missing dtype coverage: {dt}");
        }
        assert!(!loaded.covers_dtype("fp64"));
        std::fs::remove_file(&path).ok();
        // Corrupt / missing files degrade to None, never panic.
        assert!(load_policy_json(std::path::Path::new("/nonexistent/p.json")).is_none());
    }

    #[test]
    fn policy_v1_files_are_rejected() {
        // A version-1 policy predates the nm-2:4 probe arm; loading must
        // degrade to None so the caller re-probes with the full arm set.
        let path =
            std::env::temp_dir().join(format!("lx_policy_v1_test_{}.json", std::process::id()));
        std::fs::write(
            &path,
            "{\n  \"version\": 1,\n  \"isa\": \"avx2\",\n  \"threads\": 4,\n  \"mc\": 96,\n  \
             \"kc\": 256,\n  \"nc\": 2048,\n  \"min_flops_packed\": 1000000\n}\n",
        )
        .unwrap();
        assert!(load_policy_json(&path).is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn backend_lookup() {
        assert_eq!(backend_by_name("packed").unwrap().name(), "packed");
        assert!(backend_by_name("tpu").is_none());
    }
}
