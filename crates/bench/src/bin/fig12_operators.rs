//! **Figure 12**: dynamic operator performance vs dense across sparsity
//! ratios — block-wise attention kernels and neuron-wise MLP kernels.
//!
//! Paper: up to 3–5× speedups at high sparsity; execution time nearly linear
//! in the sparsity ratio (that linearity is what makes the operators
//! "adaptable and efficient in scenarios with dynamic sparsity levels").

use lx_bench::{header, row};
use lx_sparse::attention::{block_row_softmax, dsd, sdd_nt, CausalFill};
use lx_sparse::neuron::{fc1_forward, fc2_forward};
use lx_sparse::{BlockCsr, BlockMask, NeuronBlockSet};
use lx_tensor::gemm::{gemm, gemm_nt};
use lx_tensor::ops::softmax_rows;
use lx_tensor::rng::randn_vec;
use std::time::Instant;

fn time_it(mut f: impl FnMut()) -> f64 {
    f();
    let t0 = Instant::now();
    let reps = 5;
    for _ in 0..reps {
        f();
    }
    t0.elapsed().as_secs_f64() / reps as f64
}

/// A block mask with approximately the requested density, causal region.
fn mask_with_density(n: usize, density: f64, seed: u64) -> BlockMask {
    use rand::Rng;
    let mut rng = lx_tensor::rng::seeded(seed);
    let mut m = BlockMask::square(n);
    for i in 0..n {
        m.set(i, i, true); // keep softmax rows alive
        for j in 0..i {
            if rng.gen::<f64>() < density {
                m.set(i, j, true);
            }
        }
    }
    m
}

fn main() {
    let cli = lx_bench::BenchCli::parse("fig12_operators");
    // Tuned kernel policy so sparse per-block GEMMs and the dense arm both
    // dispatch to the best backend for their shape.
    lx_runtime::kernel_policy::install_tuned();
    let (s, dh, block) = (512, 64, 32);
    let n = s / block;
    println!(
        "== Fig. 12a: block-sparse attention vs dense (seq {s}, head dim {dh}, block {block}) ==\n"
    );
    let q = randn_vec(s * dh, 1.0, 1);
    let k = randn_vec(s * dh, 1.0, 2);
    let v = randn_vec(s * dh, 1.0, 3);
    let scale = 1.0 / (dh as f32).sqrt();
    let dense_t = time_it(|| {
        let mut p = vec![0.0f32; s * s];
        gemm_nt(s, dh, s, &q, &k, &mut p, 0.0);
        softmax_rows(&mut p, s);
        let mut o = vec![0.0f32; s * dh];
        gemm(s, s, dh, &p, &v, &mut o, 0.0);
    });
    header(&["sparsity", "blocks", "time ms", "dense ms", "speedup"]);
    for sparsity in [0.0f64, 0.2, 0.4, 0.6, 0.8, 0.9, 0.95] {
        let mask = mask_with_density(n, 1.0 - sparsity, 7);
        let layout = BlockCsr::from_mask(&mask, block);
        let t = time_it(|| {
            let mut p = vec![0.0f32; layout.data_len()];
            sdd_nt(&q, &k, s, dh, scale, &layout, CausalFill::NegInf, &mut p);
            block_row_softmax(&mut p, &layout);
            let mut o = vec![0.0f32; s * dh];
            dsd(&p, &v, s, dh, &layout, &mut o);
        });
        row(&[
            format!("{sparsity:.2}"),
            layout.nnz_blocks().to_string(),
            format!("{:.2}", t * 1e3),
            format!("{:.2}", dense_t * 1e3),
            format!("{:.2}x", dense_t / t),
        ]);
    }

    println!("\n== Fig. 12b: neuron-wise MLP kernels vs dense (rows 512, d 256, d_ff 1024, block 32) ==\n");
    let (rows_n, d, d_ff) = (512usize, 256usize, 1024usize);
    let x = randn_vec(rows_n * d, 1.0, 4);
    let w1t = randn_vec(d_ff * d, 0.05, 5);
    let w2 = randn_vec(d_ff * d, 0.05, 6);
    let n_blk = d_ff / block;
    let run = |set: &NeuronBlockSet| {
        let width = set.active_neurons();
        let mut z = vec![0.0f32; rows_n * width];
        fc1_forward(&x, rows_n, &w1t, d, None, set, &mut z);
        for zv in z.iter_mut() {
            if *zv < 0.0 {
                *zv = 0.0;
            }
        }
        let mut y = vec![0.0f32; rows_n * d];
        fc2_forward(&z, rows_n, &w2, d, None, set, &mut y);
    };
    let dense_set = NeuronBlockSet::all(n_blk, block);
    let mlp_dense_t = time_it(|| run(&dense_set));
    header(&[
        "sparsity",
        "active blocks",
        "time ms",
        "dense ms",
        "speedup",
    ]);
    for sparsity in [0.0f64, 0.2, 0.4, 0.6, 0.8, 0.9, 0.95] {
        let keep = (((1.0 - sparsity) * n_blk as f64).round() as usize).max(1);
        let set = NeuronBlockSet::from_indices(
            (0..keep as u32)
                .map(|i| i * (n_blk as u32 / keep.max(1) as u32).max(1) % n_blk as u32)
                .collect(),
            n_blk,
            block,
        );
        let t = time_it(|| run(&set));
        row(&[
            format!("{sparsity:.2}"),
            set.n_active().to_string(),
            format!("{:.2}", t * 1e3),
            format!("{:.2}", mlp_dense_t * 1e3),
            format!("{:.2}x", mlp_dense_t / t),
        ]);
    }
    println!("\nshape to check: time ≈ linear in (1 − sparsity); 3–5x speedups at ≥0.8 sparsity.");
    cli.finish();
}
