//! The deterministic scheduling core: many tenant jobs, one shared backbone.
//!
//! Every slice, the scheduler picks a job (round-robin or fair-share),
//! attaches that tenant's adapter onto the shared frozen backbone, runs up to
//! `slice_steps` training steps with the tenant's own optimizer, then
//! extracts the adapter and detaches — returning the backbone to its
//! pristine state. Because the backbone is frozen and *all* mutable per-
//! tenant state (adapter values + optimizer moments + data cursor) swaps in
//! and out with the tenant, an interleaved schedule produces bit-identical
//! per-tenant losses to running each job back-to-back. The integration suite
//! proves this.
//!
//! While the backbone trains one tenant, the other tenants' next batches are
//! prefetched concurrently on the `lx-parallel` worker pool, so data
//! generation never sits on the critical path.

use crate::job::{JobReport, JobSpec};
use crate::metrics::{MetricsSnapshot, ServeMetrics};
use crate::registry::AdapterRegistry;
use crate::tenant::TenantTask;
use long_exposure::engine::{EngineConfig, FinetuneEngine, StepMode};
use lx_model::{Precision, TransformerModel};
use lx_obs::{registry, Histogram};
use std::sync::Arc;

pub use crate::tenant::ProgressSink;

/// How the next tenant is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Cycle through active jobs in submission order.
    RoundRobin,
    /// Always pick the job with the fewest completed steps (ties broken by
    /// submission order) — keeps tenants with different budgets in lockstep.
    FairShare,
}

/// Scheduler configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Steps per time-slice before the backbone switches tenants.
    pub slice_steps: u64,
    pub policy: SchedPolicy,
    /// Execution mode for tenant steps. `Sparse` requires shared predictors
    /// (calibrated once, reused by every tenant).
    pub mode: StepMode,
    /// Prefetch other tenants' batches on the worker pool during a slice.
    pub prefetch: bool,
    /// Storage precision of the shared backbone — the lx-serve scaling
    /// axis: every tenant shares one backbone, so shrinking it multiplies
    /// the tenants-per-GB headroom while adapters and optimizer state stay
    /// f32 per tenant. `F16Frozen` halves the footprint; `Int8Frozen` and
    /// `Nf4Frozen` cut it to ~0.27x and ~0.14x with the lx-quant block
    /// codecs (QLoRA-style serving); `Nm24Frozen` 2:4-prunes the backbone
    /// to ~0.56x with bit-exact compute on the surviving weights, so the
    /// pack-time zero-group skip speeds up every tenant's GEMMs.
    pub precision: Precision,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            slice_steps: 4,
            policy: SchedPolicy::RoundRobin,
            mode: StepMode::Dense,
            prefetch: true,
            precision: Precision::F32,
        }
    }
}

/// A [`TenantTask`] plus the scheduler-side per-tenant instrumentation the
/// task itself does not carry (labeled histograms are a scheduler concern —
/// `lx-cluster` aggregates at replica granularity instead).
struct ActiveJob {
    task: TenantTask,
    /// `serve.slice.wait_ns{tenant}`: time from runnable to scheduled.
    wait_hist: Arc<Histogram>,
    /// `serve.slice.run_ns{tenant}`: busy time per scheduled slice.
    run_hist: Arc<Histogram>,
}

/// Multi-tenant fine-tuning scheduler over one shared backbone.
pub struct Scheduler {
    engine: FinetuneEngine,
    registry: Arc<AdapterRegistry>,
    config: ServeConfig,
    active: Vec<ActiveJob>,
    rr_cursor: usize,
    metrics: ServeMetrics,
    /// Tenant that ran the previous slice: the predicted policy's cached
    /// plan is invalidated whenever it changes (a plan predicted against one
    /// tenant's adapter must not be replayed for another).
    last_tenant: Option<String>,
}

impl Scheduler {
    /// Wrap a pristine (fully frozen, nothing attached) backbone. Panics if
    /// the model still has trainable parameters — detach tenants first.
    pub fn new(
        mut model: TransformerModel,
        engine_config: EngineConfig,
        config: ServeConfig,
        registry: Arc<AdapterRegistry>,
    ) -> Self {
        assert_eq!(
            model.num_trainable(),
            0,
            "backbone must be pristine: freeze/detach before constructing a Scheduler"
        );
        // The precision plan flows through the scheduler: the shared
        // backbone is (de)moted here once, and every tenant that attaches
        // trains its f32 adapter against the same half-stored weights.
        model.set_precision(config.precision);
        let mut engine = FinetuneEngine::new(model, engine_config);
        // Reuse predictors calibrated by a previous process, if available.
        if let Some(blob) = registry.predictors() {
            engine
                .import_predictors(blob)
                .expect("registry predictors incompatible with this backbone");
        }
        Scheduler {
            engine,
            registry,
            config,
            active: Vec::new(),
            rr_cursor: 0,
            metrics: ServeMetrics::default(),
            last_tenant: None,
        }
    }

    /// Calibrate the shared predictors once and publish them to the registry
    /// so later processes (and all tenants) reuse them.
    pub fn calibrate_shared(
        &mut self,
        batches: &[(Vec<u32>, usize, usize)],
    ) -> long_exposure::CalibrationReport {
        let report = self.engine.calibrate(batches);
        self.registry
            .set_predictors(self.engine.export_predictors())
            .expect("failed to persist shared predictors");
        report
    }

    /// Whether sparse-mode steps are possible (predictors present).
    pub fn calibrated(&self) -> bool {
        self.engine.calibrated
    }

    pub fn registry(&self) -> &Arc<AdapterRegistry> {
        &self.registry
    }

    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    pub fn active_jobs(&self) -> usize {
        self.active.len()
    }

    /// Admit a job. If the registry already holds an adapter for this tenant
    /// (same method), the job resumes from it — warm restarts across process
    /// boundaries; otherwise a fresh adapter is initialised on the backbone.
    pub fn submit(&mut self, spec: JobSpec) -> Result<(), String> {
        self.submit_with_progress(spec, None)
    }

    /// [`Self::submit`] with a per-step observer: `progress` is invoked on
    /// the scheduler thread after every step of this job with a
    /// [`StepEvent`](crate::StepEvent) (losses, densities, step wall time).
    pub fn submit_with_progress(
        &mut self,
        spec: JobSpec,
        progress: Option<ProgressSink>,
    ) -> Result<(), String> {
        if self
            .active
            .iter()
            .any(|j| j.task.spec.tenant == spec.tenant)
        {
            return Err(format!("tenant {} already has an active job", spec.tenant));
        }
        let task = TenantTask::admit(
            spec,
            progress,
            &mut self.engine,
            self.config.mode,
            &self.registry,
        )?;
        let labels = [("tenant", task.spec.tenant.as_str())];
        let wait_hist = registry().histogram_labeled("serve.slice.wait_ns", &labels);
        let run_hist = registry().histogram_labeled("serve.slice.run_ns", &labels);
        self.active.push(ActiveJob {
            task,
            wait_hist,
            run_hist,
        });
        self.metrics.queue_depth = self.active.len();
        Ok(())
    }

    fn pick_job(&mut self) -> Option<usize> {
        if self.active.is_empty() {
            return None;
        }
        match self.config.policy {
            SchedPolicy::RoundRobin => {
                let idx = self.rr_cursor % self.active.len();
                self.rr_cursor = self.rr_cursor.wrapping_add(1);
                Some(idx)
            }
            SchedPolicy::FairShare => self
                .active
                .iter()
                .enumerate()
                .min_by_key(|(i, j)| (j.task.steps_done, *i))
                .map(|(i, _)| i),
        }
    }

    /// Prefetch upcoming batches for every active job on the worker pool.
    fn prefetch_all(&mut self) {
        let depth = self.config.slice_steps as usize;
        let pool = lx_parallel::pool();
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = self
            .active
            .iter_mut()
            .filter(|j| j.task.wants_prefetch(depth))
            .map(|job| Box::new(move || job.task.prefetch(depth)) as Box<dyn FnOnce() + Send + '_>)
            .collect();
        pool.run_scoped(tasks);
    }

    /// Run one time-slice: pick a tenant, attach, train, detach. Returns the
    /// completion report if the picked job exhausted its budget, `None`
    /// otherwise (including when there is nothing to run).
    pub fn run_slice(&mut self) -> Option<JobReport> {
        if self.config.prefetch {
            self.prefetch_all();
        }
        let idx = self.pick_job()?;
        let job = &mut self.active[idx];
        job.wait_hist
            .record_duration(job.task.ready_since.elapsed());
        if self.last_tenant.as_deref() != Some(job.task.spec.tenant.as_str()) {
            self.engine.invalidate_plan_cache();
            self.last_tenant = Some(job.task.spec.tenant.clone());
        }
        let out = job
            .task
            .run_slice(&mut self.engine, self.config.mode, self.config.slice_steps);
        job.run_hist.record_duration(out.busy);
        self.metrics.record_slice(
            &job.task.spec.tenant,
            out.steps,
            out.tokens,
            out.busy,
            out.swap,
            out.last_loss,
        );
        if job.task.remaining() == 0 {
            let job = self.active.remove(idx);
            // Removal shifts the completed job's successor into `idx`; point
            // the round-robin cursor there so the successor goes next. (The
            // cursor is an unbounded counter — decrementing it would skip a
            // tenant once it has wrapped past the list length.)
            self.rr_cursor = idx;
            self.registry
                .put(&job.task.spec.tenant, job.task.adapter())
                .expect("failed to persist finished adapter");
            self.metrics.completed_jobs += 1;
            self.metrics.queue_depth = self.active.len();
            return Some(job.task.into_report());
        }
        None
    }

    /// Drive all active jobs to completion; reports in completion order.
    pub fn run_to_completion(&mut self) -> Vec<JobReport> {
        let mut reports = Vec::new();
        while !self.active.is_empty() {
            if let Some(report) = self.run_slice() {
                reports.push(report);
            }
        }
        reports
    }

    /// Step-workspace reuse counters for an active tenant's job, if any.
    /// Misses that stay flat across slices prove the per-tenant pool is
    /// retained while the backbone serves other tenants.
    pub fn tenant_workspace_stats(&self, tenant: &str) -> Option<lx_tensor::WorkspaceStats> {
        self.active
            .iter()
            .find(|j| j.task.spec.tenant == tenant)
            .map(|j| j.task.workspace_stats())
    }

    /// Tear down, returning the pristine backbone for reuse.
    pub fn into_model(self) -> TransformerModel {
        assert!(
            self.active.is_empty(),
            "cannot dismantle a scheduler with active jobs"
        );
        self.engine.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::DatasetSpec;
    use lx_model::ModelConfig;
    use lx_peft::PeftMethod;

    fn backbone() -> TransformerModel {
        let mut m = TransformerModel::new(ModelConfig::test_tiny(), 11);
        m.freeze_all();
        m
    }

    fn sched(config: ServeConfig) -> Scheduler {
        Scheduler::new(
            backbone(),
            EngineConfig {
                block_size: 4,
                ..EngineConfig::default()
            },
            config,
            Arc::new(AdapterRegistry::in_memory()),
        )
    }

    fn spec(tenant: &str, steps: u64) -> JobSpec {
        JobSpec {
            stream_len: 2_000,
            ..JobSpec::lora(tenant, steps, 1, 16)
        }
    }

    #[test]
    fn single_job_trains_to_completion() {
        let mut s = sched(ServeConfig::default());
        s.submit(spec("solo", 10)).unwrap();
        let reports = s.run_to_completion();
        assert_eq!(reports.len(), 1);
        let r = &reports[0];
        assert_eq!(r.steps, 10);
        assert_eq!(r.losses.len(), 10);
        assert!(r.losses.iter().all(|l| l.is_finite()));
        assert!(
            r.losses.last().unwrap() < r.losses.first().unwrap(),
            "training must reduce loss: {:?}",
            r.losses
        );
        // Finished adapter landed in the registry.
        assert_eq!(s.registry().tenants(), vec!["solo".to_string()]);
    }

    #[test]
    fn duplicate_tenant_rejected_while_active() {
        let mut s = sched(ServeConfig::default());
        s.submit(spec("dup", 4)).unwrap();
        assert!(s.submit(spec("dup", 4)).is_err());
    }

    #[test]
    fn sparse_mode_requires_calibration() {
        let mut s = sched(ServeConfig {
            mode: StepMode::Sparse,
            ..ServeConfig::default()
        });
        assert!(s.submit(spec("t", 2)).is_err());
    }

    #[test]
    fn round_robin_stays_fair_after_a_completion() {
        // Equal budgets, submission order a, b, c: completions must come
        // back in that order. A cursor bug that skips the successor after a
        // removal would complete c before b.
        let mut s = sched(ServeConfig {
            slice_steps: 4,
            policy: SchedPolicy::RoundRobin,
            ..ServeConfig::default()
        });
        s.submit(spec("a", 8)).unwrap();
        s.submit(spec("b", 8)).unwrap();
        s.submit(spec("c", 8)).unwrap();
        let order: Vec<String> = s
            .run_to_completion()
            .into_iter()
            .map(|r| r.tenant)
            .collect();
        assert_eq!(order, vec!["a", "b", "c"], "round-robin completion order");
    }

    #[test]
    fn sparse_mode_rejects_misaligned_sequences_at_admission() {
        let mut s = sched(ServeConfig {
            mode: StepMode::Sparse,
            ..ServeConfig::default()
        });
        let calib = vec![(
            spec("c", 1)
                .dataset
                .build_batcher(64, 1_000)
                .next_batch(1, 16),
            1,
            16,
        )];
        s.calibrate_shared(&calib);
        // seq 16 aligns with block 4; a 3-token prompt prefix breaks it.
        let mut misaligned = spec("t", 2);
        misaligned.method = PeftMethod::PromptTuning { prompt_len: 3 };
        let err = s.submit(misaligned).unwrap_err();
        assert!(err.contains("block-aligned"), "{err}");
        // Aligned prompt is fine.
        let mut aligned = spec("t", 2);
        aligned.method = PeftMethod::PromptTuning { prompt_len: 4 };
        s.submit(aligned).unwrap();
    }

    #[test]
    fn half_precision_backbone_serves_tenants() {
        let mut s = sched(ServeConfig {
            precision: Precision::F16Frozen,
            ..ServeConfig::default()
        });
        let job = |tenant: &str| {
            let mut j = spec(tenant, 24);
            j.lr = 8e-3; // tiny random backbone: make 24 streamed steps count
            j
        };
        s.submit(job("a")).unwrap();
        s.submit(job("b")).unwrap();
        let reports = s.run_to_completion();
        assert_eq!(reports.len(), 2);
        for r in &reports {
            assert!(r.losses.iter().all(|l| l.is_finite()), "{:?}", r.losses);
            // Batches stream (no repeats), so individual losses are noisy;
            // the windowed mean must still trend down.
            let mean = |w: &[f32]| w.iter().sum::<f32>() / w.len() as f32;
            let (head, tail) = (mean(&r.losses[..6]), mean(&r.losses[18..]));
            assert!(
                tail < head,
                "{}: training on the half backbone must reduce loss: {:?}",
                r.tenant,
                r.losses
            );
        }
        let model = s.into_model();
        assert_eq!(model.precision(), Precision::F16Frozen);
    }

    #[test]
    fn quantized_backbone_serves_tenants_deterministically() {
        // QLoRA-style serving: the shared backbone holds int8/NF4 codes, the
        // per-tenant adapters stay f32. The scheduler-equivalence property
        // must survive quantized storage — the frozen code bytes never move
        // and all mutable tenant state swaps in/out, so interleaved and
        // sequential runs stay bit-identical.
        for precision in [Precision::Int8Frozen, Precision::Nf4Frozen] {
            let run = |slice_steps: u64| {
                let mut s = sched(ServeConfig {
                    slice_steps,
                    precision,
                    ..ServeConfig::default()
                });
                s.submit(spec("a", 6)).unwrap();
                s.submit(spec("b", 6)).unwrap();
                let mut reports = s.run_to_completion();
                reports.sort_by(|x, y| x.tenant.cmp(&y.tenant));
                let model = s.into_model();
                assert_eq!(model.precision(), precision);
                reports
                    .into_iter()
                    .map(|r| r.losses)
                    .collect::<Vec<Vec<f32>>>()
            };
            let interleaved = run(2);
            let sequential = run(6);
            assert_eq!(interleaved, sequential, "{precision}");
            for losses in &interleaved {
                assert!(losses.iter().all(|l| l.is_finite()), "{precision}");
            }
        }
    }

    #[test]
    fn half_precision_interleaving_matches_sequential() {
        // The scheduler-equivalence property must survive the storage
        // change: the backbone is frozen (f16 bits never move) and all
        // mutable tenant state is f32 and swaps in/out, so interleaved and
        // sequential runs stay bit-identical.
        let run = |slice_steps: u64| {
            let mut s = sched(ServeConfig {
                slice_steps,
                precision: Precision::F16Frozen,
                ..ServeConfig::default()
            });
            s.submit(spec("a", 6)).unwrap();
            s.submit(spec("b", 6)).unwrap();
            let mut reports = s.run_to_completion();
            reports.sort_by(|x, y| x.tenant.cmp(&y.tenant));
            reports
                .into_iter()
                .map(|r| r.losses)
                .collect::<Vec<Vec<f32>>>()
        };
        let interleaved = run(2); // tenants alternate every 2 steps
        let sequential = run(6); // each tenant runs to completion in one slice
        assert_eq!(interleaved, sequential);
    }

    #[test]
    fn progress_sink_observes_every_step() {
        let mut s = sched(ServeConfig {
            slice_steps: 3,
            ..ServeConfig::default()
        });
        let events = Arc::new(std::sync::Mutex::new(Vec::new()));
        let sink_events = events.clone();
        s.submit_with_progress(
            spec("watched", 7),
            Some(Box::new(move |e| sink_events.lock().unwrap().push(e))),
        )
        .unwrap();
        let report = s.run_to_completion().remove(0);
        let events = events.lock().unwrap();
        assert_eq!(events.len(), 7, "one event per step");
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.tenant, "watched");
            assert_eq!(e.step, i as u64 + 1);
            assert_eq!(e.total_steps, 7);
            assert_eq!(e.loss, report.losses[i], "event loss mirrors report");
            assert!(!e.eval);
            assert_eq!(e.micro_batches, 1);
        }
    }

    #[test]
    fn accumulated_job_matches_its_budget() {
        let mut s = sched(ServeConfig::default());
        let mut accum = spec("accum", 6);
        accum.micro_batches = 3;
        s.submit(accum).unwrap();
        let report = s.run_to_completion().remove(0);
        assert_eq!(
            report.steps, 6,
            "steps count optimizer updates, not batches"
        );
        assert!(report.losses.iter().all(|l| l.is_finite()));
        // Tokens account for every micro-batch drawn.
        let snap = s.metrics();
        assert_eq!(snap.total_tokens, 6 * 3 * 16);
    }

    #[test]
    fn eval_only_job_leaves_the_stored_adapter_untouched() {
        let registry = Arc::new(AdapterRegistry::in_memory());
        let mut s = Scheduler::new(
            backbone(),
            EngineConfig {
                block_size: 4,
                ..EngineConfig::default()
            },
            ServeConfig::default(),
            registry.clone(),
        );
        s.submit(spec("t", 6)).unwrap();
        s.run_to_completion();
        let trained = registry.get("t").unwrap().unwrap();
        // Evaluation pass over fresh data: losses come back, adapter
        // bit-identical afterwards.
        let mut eval = spec("t", 4);
        eval.eval_only = true;
        let events = Arc::new(std::sync::Mutex::new(Vec::new()));
        let sink_events = events.clone();
        s.submit_with_progress(
            eval,
            Some(Box::new(move |e| sink_events.lock().unwrap().push(e))),
        )
        .unwrap();
        let report = s.run_to_completion().remove(0);
        assert_eq!(report.steps, 4);
        assert!(report.losses.iter().all(|l| l.is_finite()));
        assert_eq!(
            registry.get("t").unwrap().unwrap(),
            trained,
            "eval-only must not move the adapter"
        );
        assert!(events.lock().unwrap().iter().all(|e| e.eval));
    }

    #[test]
    fn tenant_workspaces_are_retained_across_slices() {
        // Two interleaved tenants with different shapes: after each tenant's
        // first slice (warmup), its per-tenant workspace must serve every
        // later slice from the pool — misses stay flat, hits keep growing —
        // even though the other tenant runs in between.
        let mut s = sched(ServeConfig {
            slice_steps: 2,
            ..ServeConfig::default()
        });
        let mut a = spec("a", 12);
        a.batch = 2;
        let b = spec("b", 12);
        s.submit(a).unwrap();
        s.submit(b).unwrap();
        s.run_slice(); // a: warmup slice
        s.run_slice(); // b: warmup slice
        let a1 = s.tenant_workspace_stats("a").unwrap();
        let b1 = s.tenant_workspace_stats("b").unwrap();
        assert!(a1.recycled > 0, "{a1:?}");
        for _ in 0..4 {
            s.run_slice();
        }
        let a2 = s.tenant_workspace_stats("a").unwrap();
        let b2 = s.tenant_workspace_stats("b").unwrap();
        assert_eq!(a2.misses, a1.misses, "tenant a steady state: {a2:?}");
        assert_eq!(b2.misses, b1.misses, "tenant b steady state: {b2:?}");
        assert!(a2.hits > a1.hits && b2.hits > b1.hits);
    }

    #[test]
    fn fair_share_keeps_tenants_in_lockstep() {
        let mut s = sched(ServeConfig {
            slice_steps: 2,
            policy: SchedPolicy::FairShare,
            ..ServeConfig::default()
        });
        s.submit(spec("a", 6)).unwrap();
        s.submit(spec("b", 6)).unwrap();
        // After three slices, no tenant should be more than one slice ahead.
        for _ in 0..3 {
            s.run_slice();
            let snap = s.metrics();
            let sa = snap.per_tenant.get("a").map_or(0, |t| t.steps);
            let sb = snap.per_tenant.get("b").map_or(0, |t| t.steps);
            assert!(sa.abs_diff(sb) <= 2, "fair share drifted: a={sa} b={sb}");
        }
    }

    #[test]
    fn completed_tenant_resumes_from_registry() {
        let registry = Arc::new(AdapterRegistry::in_memory());
        let mut s = Scheduler::new(
            backbone(),
            EngineConfig {
                block_size: 4,
                ..EngineConfig::default()
            },
            ServeConfig::default(),
            registry.clone(),
        );
        s.submit(spec("warm", 6)).unwrap();
        let first = s.run_to_completion().remove(0);
        // Resubmit: must warm-start from the stored adapter, so the first
        // loss of the second run continues the trend rather than restarting
        // from the fresh-adapter loss.
        s.submit(spec("warm", 6)).unwrap();
        let second = s.run_to_completion().remove(0);
        assert!(
            second.losses[0] < first.losses[0],
            "warm resume should start below the cold first step: {} vs {}",
            second.losses[0],
            first.losses[0]
        );
    }

    #[test]
    fn resume_with_different_method_rejected() {
        let registry = Arc::new(AdapterRegistry::in_memory());
        let mut s = Scheduler::new(
            backbone(),
            EngineConfig {
                block_size: 4,
                ..EngineConfig::default()
            },
            ServeConfig::default(),
            registry,
        );
        s.submit(spec("t", 2)).unwrap();
        s.run_to_completion();
        let mut other = spec("t", 2);
        other.method = PeftMethod::adapter_default();
        assert!(s.submit(other).is_err());
    }

    #[test]
    fn mixed_methods_coexist() {
        let mut s = sched(ServeConfig {
            slice_steps: 3,
            ..ServeConfig::default()
        });
        let mut a = spec("lora-t", 6);
        a.method = PeftMethod::lora_default();
        let mut b = spec("adpt-t", 6);
        b.method = PeftMethod::adapter_default();
        b.dataset = DatasetSpec::Instruct {
            world_seed: 9,
            salt: 4,
        };
        let mut c = spec("prompt-t", 6);
        c.method = PeftMethod::PromptTuning { prompt_len: 4 };
        s.submit(a).unwrap();
        s.submit(b).unwrap();
        s.submit(c).unwrap();
        let reports = s.run_to_completion();
        assert_eq!(reports.len(), 3);
        for r in &reports {
            assert_eq!(r.steps, 6);
            assert!(r.final_loss().is_finite());
        }
        let snap = s.metrics();
        assert_eq!(snap.completed_jobs, 3);
        assert_eq!(snap.total_steps, 18);
        assert_eq!(snap.queue_depth, 0);
    }
}
