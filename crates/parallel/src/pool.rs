//! The worker pool itself.

use crate::latch::Latch;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::ops::Range;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

type Task = Box<dyn FnOnce() + Send + 'static>;

std::thread_local! {
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// True while the current thread is executing a pool task — either on a
/// worker thread or on a submitting thread that is helping drain the queue.
/// Kernels use this to fall back to sequential execution instead of
/// oversubscribing the pool with nested parallel sections.
pub fn in_worker() -> bool {
    IN_WORKER.with(|f| f.get())
}

/// Run `task` with the in-worker flag set, restoring the previous value
/// afterwards (nested scopes keep the flag set).
fn run_marked(task: Task) {
    IN_WORKER.with(|f| {
        let prev = f.replace(true);
        task();
        f.set(prev);
    });
}

struct Shared {
    queue: Mutex<VecDeque<Task>>,
    work_available: Condvar,
    shutdown: AtomicBool,
}

impl Shared {
    fn try_pop(&self) -> Option<Task> {
        self.queue.lock().pop_front()
    }
}

/// Fixed-size pool of worker threads executing boxed tasks from a shared
/// queue. Submitting threads that wait on a task group *help* drain the queue,
/// which makes nested parallel sections deadlock-free.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    n_threads: usize,
}

impl ThreadPool {
    /// Create a pool with `n_threads` workers (at least 1).
    pub fn new(n_threads: usize) -> Self {
        let n_threads = n_threads.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            work_available: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..n_threads)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("lx-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("failed to spawn lx worker thread")
            })
            .collect();
        ThreadPool {
            shared,
            workers,
            n_threads,
        }
    }

    /// Number of worker threads (excluding helping submitters).
    pub fn threads(&self) -> usize {
        self.n_threads
    }

    fn push_task(&self, task: Task) {
        self.shared.queue.lock().push_back(task);
        self.shared.work_available.notify_one();
    }

    /// Execute a group of borrowed tasks, blocking (and helping) until all of
    /// them finish. Panics in any task are re-raised here after the whole
    /// group has completed, so the borrowed environment is never observed by
    /// a still-running task.
    pub fn run_scoped<'env>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        if tasks.is_empty() {
            return;
        }
        let latch = Arc::new(Latch::new(tasks.len()));
        let panicked = Arc::new(AtomicBool::new(false));
        for task in tasks {
            // SAFETY: `run_scoped` does not return until `latch` reports every
            // task finished, so the `'env` borrows inside `task` strictly
            // outlive its execution. The transmute only erases the lifetime;
            // layout of the fat pointer is unchanged.
            let task: Task =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Task>(task) };
            let latch = latch.clone();
            let panicked = panicked.clone();
            self.push_task(Box::new(move || {
                if std::panic::catch_unwind(AssertUnwindSafe(task)).is_err() {
                    panicked.store(true, Ordering::SeqCst);
                }
                latch.count_down();
            }));
        }
        // Help execute queued tasks while waiting: required for nested scopes.
        while !latch.is_done() {
            if let Some(task) = self.shared.try_pop() {
                run_marked(task);
            } else {
                latch.wait_timeout(Duration::from_micros(200));
            }
        }
        if panicked.load(Ordering::SeqCst) {
            panic!("task in Long Exposure thread pool panicked");
        }
    }

    /// Parallel loop over `range` in chunks of at least `grain` items.
    pub fn parallel_for<F>(&self, range: Range<usize>, grain: usize, body: F)
    where
        F: Fn(Range<usize>) + Sync,
    {
        let n = range.len();
        if n == 0 {
            return;
        }
        let grain = grain.max(1);
        if n <= grain {
            body(range);
            return;
        }
        let chunks = split_range(range, grain, self.n_threads);
        let body_ref = &body;
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = chunks
            .into_iter()
            .map(|chunk| Box::new(move || body_ref(chunk)) as Box<dyn FnOnce() + Send + '_>)
            .collect();
        self.run_scoped(tasks);
    }

    /// Chunked parallel map preserving chunk order in the output.
    pub fn parallel_map<R, F>(&self, range: Range<usize>, grain: usize, body: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Range<usize>) -> R + Sync,
    {
        let n = range.len();
        if n == 0 {
            return Vec::new();
        }
        let grain = grain.max(1);
        if n <= grain {
            return vec![body(range)];
        }
        let chunks = split_range(range, grain, self.n_threads);
        let mut slots: Vec<Option<R>> = Vec::with_capacity(chunks.len());
        slots.resize_with(chunks.len(), || None);
        {
            let body_ref = &body;
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = chunks
                .into_iter()
                .zip(slots.iter_mut())
                .map(|(chunk, slot)| {
                    Box::new(move || *slot = Some(body_ref(chunk))) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            self.run_scoped(tasks);
        }
        slots
            .into_iter()
            .map(|s| s.expect("scoped task did not fill its slot"))
            .collect()
    }

    /// Run two closures, the second potentially on another worker.
    pub fn join<RA, RB>(
        &self,
        a: impl FnOnce() -> RA + Send,
        b: impl FnOnce() -> RB + Send,
    ) -> (RA, RB)
    where
        RA: Send,
        RB: Send,
    {
        let mut ra: Option<RA> = None;
        let mut rb: Option<RB> = None;
        {
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> =
                vec![Box::new(|| ra = Some(a())), Box::new(|| rb = Some(b()))];
            self.run_scoped(tasks);
        }
        (
            ra.expect("join arm a missing"),
            rb.expect("join arm b missing"),
        )
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.work_available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let task = {
            let mut queue = shared.queue.lock();
            loop {
                if let Some(task) = queue.pop_front() {
                    break Some(task);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                shared.work_available.wait(&mut queue);
            }
        };
        match task {
            Some(task) => run_marked(task),
            None => return,
        }
    }
}

/// Split `range` into at most `max_parts_per_thread * threads` chunks of at
/// least `grain` items, preserving order.
pub(crate) fn split_range(range: Range<usize>, grain: usize, threads: usize) -> Vec<Range<usize>> {
    let n = range.len();
    // Oversubscribe 2x for load balance between uneven chunks.
    let target_chunks = (threads * 2).max(1);
    let chunk = (n.div_ceil(target_chunks)).max(grain);
    let mut out = Vec::with_capacity(n.div_ceil(chunk));
    let mut start = range.start;
    while start < range.end {
        let end = (start + chunk).min(range.end);
        out.push(start..end);
        start = end;
    }
    out
}

static GLOBAL_POOL: OnceLock<ThreadPool> = OnceLock::new();
static REQUESTED_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Request a specific global pool size. Must be called before the first use
/// of [`pool`]; afterwards it has no effect (returns `false`).
pub fn set_global_threads(n: usize) -> bool {
    if GLOBAL_POOL.get().is_some() {
        return false;
    }
    REQUESTED_THREADS.store(n, Ordering::SeqCst);
    true
}

/// The process-wide pool. Size: `LX_THREADS` env var, else
/// [`set_global_threads`], else `available_parallelism`.
pub fn pool() -> &'static ThreadPool {
    GLOBAL_POOL.get_or_init(|| {
        let n = std::env::var("LX_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .or_else(|| {
                let req = REQUESTED_THREADS.load(Ordering::SeqCst);
                (req > 0).then_some(req)
            })
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        ThreadPool::new(n)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_range_covers_exactly() {
        let chunks = split_range(3..1003, 10, 4);
        assert_eq!(chunks.first().unwrap().start, 3);
        assert_eq!(chunks.last().unwrap().end, 1003);
        for pair in chunks.windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
        assert!(chunks.iter().all(|c| !c.is_empty()));
    }

    #[test]
    fn split_range_respects_grain() {
        let chunks = split_range(0..100, 40, 8);
        // grain 40 forces at most ceil(100/40)=3 chunks even with 8 threads.
        assert!(chunks.len() <= 3);
        assert!(chunks[..chunks.len() - 1].iter().all(|c| c.len() >= 40));
    }

    #[test]
    fn private_pool_executes_and_shuts_down() {
        let pool = ThreadPool::new(3);
        assert_eq!(pool.threads(), 3);
        let sum: usize = pool
            .parallel_map(0..100, 5, |r| r.sum::<usize>())
            .into_iter()
            .sum();
        assert_eq!(sum, (0..100).sum::<usize>());
        drop(pool); // must not hang
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        let out = pool.parallel_map(0..10, 1, |r| r.len());
        assert_eq!(out.iter().sum::<usize>(), 10);
    }
}
