//! Multi-tenant serving throughput: N=4 concurrent tenant fine-tuning jobs
//! sharing ONE backbone and ONE calibrated predictor set, scheduled in
//! fair-share time-slices. Reports per-tenant and aggregate throughput, the
//! adapter swap overhead, and the dense-execution baseline for comparison.
//!
//! ```sh
//! cargo run --release -p lx-bench --bin serve_throughput
//! ```
//!
//! `--smoke` shrinks the workload (2 tenants × 4 steps of 2 accumulated
//! micro-batches each, seq 32) and turns the run into a CI gate: every
//! tenant must complete with finite losses on both arms, non-zero
//! utilisation, and a per-step progress event stream that mirrors the final
//! report, else the exit code is non-zero.
//!
//! `--precision f32|f16` picks the shared-backbone storage plan for both
//! arms (default f16, the production configuration). Pass `f32` to keep the
//! JSON trajectory comparable with pre-precision-plan runs or to measure
//! the storage plan's own serving cost.
//!
//! `--trace <path>` records both arms in an `lx-obs` trace session and
//! writes a Chrome trace-event JSON: tenant slices, adapter swaps and step
//! phases on one Perfetto timeline.
//!
//! `--replicas 1,2,4` switches to the **cluster scaling sweep**: each listed
//! replica count drives an `lx-cluster` ClusterScheduler over `--tenants M`
//! tenants (default 8 on `--smoke`, 128 full — every 2nd tenant an
//! Interactive fusable eval job, the rest Batch LoRA training), reporting an
//! aggregate steps/s-vs-replicas table with p50/p99 step latency from the
//! `serve.step.ns` histogram, fused-step and steal counters. On `--smoke`
//! the sweep gates completion, fusion (when enough eval tenants co-queue)
//! and — only when the host exposes enough cores — replica-scaling floors.
//! `--compare <baseline.json> [--tolerance <frac>]` additionally gates the
//! sweep's `speedup` column against a committed baseline
//! (`ci/baselines/serve_throughput.json`); improvements never fail.

use long_exposure::engine::{EngineConfig, StepMode};
use lx_bench::{fmt_ms, header, load_bench_json, row, sim_model, BenchCli, SIM_BLOCK};
use lx_cluster::{ClusterConfig, ClusterScheduler, QosClass, QosQuotas};
use lx_model::{ModelConfig, Precision};
use lx_obs::{Histogram, TraceSession};
use lx_serve::{
    AdapterRegistry, DatasetSpec, JobSpec, SchedPolicy, Scheduler, ServeConfig, StepEvent,
};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Instant;

struct Workload {
    n_tenants: usize,
    steps_per_tenant: u64,
    batch: usize,
    seq: usize,
    /// Micro-batches accumulated per optimizer step.
    micro_batches: usize,
}

const FULL: Workload = Workload {
    n_tenants: 4,
    steps_per_tenant: 8,
    batch: 1,
    seq: 64,
    micro_batches: 1,
};

const SMOKE: Workload = Workload {
    n_tenants: 2,
    steps_per_tenant: 4,
    batch: 1,
    seq: 32,          // still a multiple of SIM_BLOCK
    micro_batches: 2, // exercise gradient accumulation in the CI gate
};

fn backbone(seed: u64) -> lx_model::TransformerModel {
    let mut model = sim_model(ModelConfig::opt_sim_small(), seed);
    model.freeze_all();
    model
}

fn engine_cfg(w: &Workload) -> EngineConfig {
    EngineConfig {
        block_size: SIM_BLOCK,
        attn_prob_threshold: 8.0 / w.seq as f32,
        calib_epochs: 80,
        ..EngineConfig::default()
    }
}

fn tenant_specs(w: &Workload) -> Vec<JobSpec> {
    (0..w.n_tenants)
        .map(|i| {
            let mut spec = JobSpec::lora(format!("tenant-{i}"), w.steps_per_tenant, w.batch, w.seq);
            spec.dataset = DatasetSpec::E2e {
                world_seed: 0x5eed,
                salt: 1000 + i as u64,
            };
            spec.stream_len = 50_000;
            spec.micro_batches = w.micro_batches;
            spec
        })
        .collect()
}

/// Run one arm; returns gate violations (empty = healthy).
fn run(
    w: &Workload,
    mode: StepMode,
    precision: Precision,
    registry: Arc<AdapterRegistry>,
    label: &str,
) -> Vec<String> {
    let mut scheduler = Scheduler::new(
        backbone(42),
        engine_cfg(w),
        ServeConfig {
            slice_steps: 2,
            policy: SchedPolicy::FairShare,
            mode,
            prefetch: true,
            precision,
        },
        registry.clone(),
    );
    if mode == StepMode::Sparse && !scheduler.calibrated() {
        // One calibration, shared by every tenant and persisted for later
        // processes via the registry.
        let spec = DatasetSpec::E2e {
            world_seed: 0x5eed,
            salt: 0,
        };
        let mut batcher = spec.build_batcher(1024, 50_000);
        let calib: Vec<(Vec<u32>, usize, usize)> = (0..3)
            .map(|_| (batcher.next_batch(w.batch, w.seq), w.batch, w.seq))
            .collect();
        let t0 = Instant::now();
        let report = scheduler.calibrate_shared(&calib);
        println!(
            "calibrated shared predictors once in {} ms (attn recall {:.1}%, mlp recall {:.1}%) — amortised over {} tenants",
            fmt_ms(t0.elapsed()),
            100.0 * report.mean_attn_recall(),
            100.0 * report.mean_mlp_recall(),
            w.n_tenants,
        );
    }
    // Every tenant streams per-step progress events; the smoke gate checks
    // the stream mirrors the terminal report.
    let events: Arc<Mutex<Vec<StepEvent>>> = Arc::new(Mutex::new(Vec::new()));
    for spec in tenant_specs(w) {
        let sink_events = events.clone();
        scheduler
            .submit_with_progress(
                spec,
                Some(Box::new(move |e| sink_events.lock().unwrap().push(e))),
            )
            .expect("submit");
    }
    println!(
        "\n== {label}: {} tenants × {} steps (batch {}, seq {}) on one shared {precision} backbone ==",
        w.n_tenants, w.steps_per_tenant, w.batch, w.seq
    );
    let t0 = Instant::now();
    let reports = scheduler.run_to_completion();
    let wall = t0.elapsed();
    let snap = scheduler.metrics();

    header(&[
        "tenant",
        "steps",
        "steps/s",
        "tok/s",
        "final loss",
        "swap ms/slice",
    ]);
    for (tenant, m) in &snap.per_tenant {
        let final_loss = reports
            .iter()
            .find(|r| &r.tenant == tenant)
            .map_or(f32::NAN, |r| r.final_loss());
        row(&[
            tenant.clone(),
            m.steps.to_string(),
            format!("{:.2}", m.steps_per_sec()),
            format!("{:.0}", m.tokens_per_sec()),
            format!("{final_loss:.4}"),
            format!("{:.2}", m.swap.as_secs_f64() * 1e3 / m.slices.max(1) as f64),
        ]);
    }
    let adapter_params: usize = reports.iter().map(|r| r.adapter_params).sum();
    println!(
        "aggregate: {} steps in {} ms → {:.2} steps/s, {:.0} tok/s, utilisation {:.0}%",
        snap.total_steps,
        fmt_ms(wall),
        snap.total_steps as f64 / wall.as_secs_f64(),
        snap.total_tokens as f64 / wall.as_secs_f64(),
        100.0 * snap.utilisation(),
    );
    println!(
        "marginal per-tenant state: {} params total across {} adapters ({:.2}% of one backbone)",
        adapter_params,
        w.n_tenants,
        100.0 * adapter_params as f64 / ModelConfig::opt_sim_small().param_count() as f64,
    );

    // Smoke-gate checks: completion, finite losses, the scheduler actually
    // did work. Collected regardless; main() only enforces them on --smoke.
    let mut violations = Vec::new();
    if reports.len() != w.n_tenants {
        violations.push(format!(
            "{label}: {} of {} tenants completed",
            reports.len(),
            w.n_tenants
        ));
    }
    for r in &reports {
        if r.steps != w.steps_per_tenant {
            violations.push(format!(
                "{label}/{}: {} of {} steps",
                r.tenant, r.steps, w.steps_per_tenant
            ));
        }
        if !r.losses.iter().all(|l| l.is_finite()) {
            violations.push(format!("{label}/{}: non-finite loss", r.tenant));
        }
    }
    if snap.utilisation() <= 0.0 {
        violations.push(format!("{label}: zero utilisation"));
    }
    // Serve-progress checks: one event per step per tenant, mirroring the
    // report's losses, with the configured accumulation factor.
    let events = events.lock().unwrap();
    // Step-latency percentiles across all tenants of this arm — the tail
    // matters under interleaving, and a mean hides it.
    let lat = Histogram::new();
    for e in events.iter() {
        lat.record_duration(e.step_time);
    }
    println!();
    header(&["arm", "steps", "step p50 ms", "step p99 ms"]);
    row(&[
        label.to_string(),
        lat.count().to_string(),
        format!("{:.2}", lat.p50() as f64 / 1e6),
        format!("{:.2}", lat.p99() as f64 / 1e6),
    ]);
    for r in &reports {
        let tenant_events: Vec<&StepEvent> =
            events.iter().filter(|e| e.tenant == r.tenant).collect();
        if tenant_events.len() != r.losses.len() {
            violations.push(format!(
                "{label}/{}: {} progress events for {} steps",
                r.tenant,
                tenant_events.len(),
                r.losses.len()
            ));
            continue;
        }
        for (i, e) in tenant_events.iter().enumerate() {
            if e.loss != r.losses[i] || !e.loss.is_finite() {
                violations.push(format!(
                    "{label}/{}: event {} loss {} != report {}",
                    r.tenant, i, e.loss, r.losses[i]
                ));
            }
            if e.micro_batches != w.micro_batches {
                violations.push(format!(
                    "{label}/{}: event {} accumulated {} micro-batches, expected {}",
                    r.tenant, i, e.micro_batches, w.micro_batches
                ));
            }
        }
    }
    violations
}

fn calib_batches(w: &Workload) -> Vec<(Vec<u32>, usize, usize)> {
    let spec = DatasetSpec::E2e {
        world_seed: 0x5eed,
        salt: 0,
    };
    let mut batcher = spec.build_batcher(1024, 50_000);
    (0..3)
        .map(|_| (batcher.next_batch(w.batch, w.seq), w.batch, w.seq))
        .collect()
}

/// Cluster tenant mix: every 2nd tenant is an Interactive, fusable eval job
/// (single micro-batch, shared shape), the rest Batch LoRA training.
fn cluster_specs(w: &Workload, tenants: usize) -> Vec<(JobSpec, QosClass)> {
    (0..tenants)
        .map(|i| {
            let mut spec =
                JobSpec::lora(format!("tenant-{i:03}"), w.steps_per_tenant, w.batch, w.seq);
            spec.dataset = DatasetSpec::E2e {
                world_seed: 0x5eed,
                salt: 1000 + i as u64,
            };
            spec.stream_len = 50_000;
            if i % 2 == 1 {
                spec.eval_only = true;
                spec.micro_batches = 1;
                (spec, QosClass::Interactive)
            } else {
                spec.micro_batches = w.micro_batches;
                (spec, QosClass::Batch)
            }
        })
        .collect()
}

/// Minimum aggregate-steps/s scaling expected over the 1-replica arm, when
/// the host actually has the cores to show it.
fn scaling_floor(replicas: usize) -> Option<f64> {
    match replicas {
        0 | 1 => None,
        2 | 3 => Some(1.4),
        _ => Some(2.5),
    }
}

/// The `--replicas` scaling sweep. Emits exactly one collected table (the
/// baseline/compare unit) and returns gate violations (enforced on --smoke).
fn cluster_sweep(
    w: &Workload,
    precision: Precision,
    replica_list: &[usize],
    tenants: usize,
) -> Vec<String> {
    let n_eval = tenants / 2;
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Speedups are relative to the first listed arm, so scaling floors only
    // mean anything when that arm is the 1-replica baseline (a single-count
    // CI matrix arm gates completion and fusion, not scaling).
    let scaled_vs_one = replica_list.first() == Some(&1);
    println!(
        "\n== cluster scaling sweep: {} tenants ({} Batch train + {} Interactive eval, fusable) \
         × {} steps, replicas {:?}, {} host core(s) ==",
        tenants,
        tenants - n_eval,
        n_eval,
        w.steps_per_tenant,
        replica_list,
        cores,
    );
    let step_hist = lx_obs::registry().histogram("serve.step.ns");
    let mut violations = Vec::new();
    let mut baseline_sps: Option<f64> = None;
    struct Arm {
        replicas: usize,
        steps: u64,
        wall_ms: f64,
        sps: f64,
        speedup: f64,
        floor: Option<f64>,
        enforced: bool,
        p50_ms: f64,
        p99_ms: f64,
        fused: u64,
        steals: u64,
    }
    let mut arms: Vec<Arm> = Vec::new();
    for &replicas in replica_list {
        let mut cluster = ClusterScheduler::new(
            |_| backbone(42),
            engine_cfg(w),
            ClusterConfig {
                replicas,
                slice_steps: 2,
                mode: StepMode::Sparse,
                precision,
                // Size quotas to the offered load: backpressure behaviour is
                // proven by the integration suite; the sweep measures
                // steady-state throughput.
                quotas: QosQuotas {
                    interactive: n_eval.max(64),
                    batch: tenants.max(256),
                    ..QosQuotas::default()
                },
                fusion: true,
                max_fused: 8,
                sequential_gemm: true,
            },
            Arc::new(AdapterRegistry::in_memory()),
        );
        let t0 = Instant::now();
        cluster.calibrate_shared(&calib_batches(w));
        println!(
            "replicas {replicas}: calibrated once on replica 0, broadcast in {} ms",
            fmt_ms(t0.elapsed())
        );
        for (spec, class) in cluster_specs(w, tenants) {
            let tenant = spec.tenant.clone();
            if !cluster.submit(spec, class).is_admitted() {
                violations.push(format!("replicas {replicas}: {tenant} not admitted"));
            }
        }
        step_hist.reset();
        let t0 = Instant::now();
        let report = cluster.run_to_completion();
        let wall = t0.elapsed();
        let snap = cluster.metrics();
        if report.reports.len() != tenants {
            violations.push(format!(
                "replicas {replicas}: {} of {tenants} tenants completed",
                report.reports.len()
            ));
        }
        for f in &report.failures {
            violations.push(format!(
                "replicas {replicas}: {} failed: {}",
                f.tenant, f.error
            ));
        }
        if !report.quarantined.is_empty() {
            violations.push(format!(
                "replicas {replicas}: replicas {:?} quarantined without fault injection",
                report.quarantined
            ));
        }
        for r in &report.reports {
            if r.steps != w.steps_per_tenant {
                violations.push(format!(
                    "replicas {replicas}/{}: {} of {} steps",
                    r.tenant, r.steps, w.steps_per_tenant
                ));
            }
            if !r.losses.iter().all(|l| l.is_finite()) {
                violations.push(format!("replicas {replicas}/{}: non-finite loss", r.tenant));
            }
        }
        // Fusion must engage once ≥2 fusable eval tenants share each
        // replica's queue on average; below that, placement may legitimately
        // scatter them one-per-replica.
        if n_eval >= 2 * replicas && report.fused_steps == 0 {
            violations.push(format!(
                "replicas {replicas}: no fused eval steps despite {n_eval} fusable tenants"
            ));
        }
        let sps = snap.total_steps as f64 / wall.as_secs_f64();
        let speedup = sps / *baseline_sps.get_or_insert(sps);
        let floor = if scaled_vs_one {
            scaling_floor(replicas)
        } else {
            None
        };
        let enforced = floor.is_some() && cores >= replicas;
        if let Some(f) = floor {
            if enforced {
                if speedup < f {
                    violations.push(format!(
                        "replicas {replicas}: aggregate scaling {speedup:.2}x below the {f:.2}x floor"
                    ));
                }
            } else {
                println!(
                    "serve_throughput: SKIP {replicas}-replica {f:.2}x scaling floor — host exposes \
                     {cores} core(s)"
                );
            }
        }
        arms.push(Arm {
            replicas,
            steps: snap.total_steps,
            wall_ms: wall.as_secs_f64() * 1e3,
            sps,
            speedup,
            floor,
            enforced,
            p50_ms: step_hist.p50() as f64 / 1e6,
            p99_ms: step_hist.p99() as f64 / 1e6,
            fused: report.fused_steps,
            steals: report.steals,
        });
    }
    println!();
    header(&[
        "replicas",
        "tenants",
        "steps",
        "wall ms",
        "steps/s",
        "speedup",
        "floor",
        "step p50 ms",
        "step p99 ms",
        "fused steps",
        "steals",
    ]);
    for a in &arms {
        let floor = match (a.floor, a.enforced) {
            (Some(f), true) => format!("{f:.2}x"),
            (Some(f), false) => format!("({f:.2}x skip)"),
            (None, _) => "-".to_string(),
        };
        row(&[
            a.replicas.to_string(),
            tenants.to_string(),
            a.steps.to_string(),
            format!("{:.1}", a.wall_ms),
            format!("{:.2}", a.sps),
            format!("{:.2}x", a.speedup),
            floor,
            format!("{:.2}", a.p50_ms),
            format!("{:.2}", a.p99_ms),
            a.fused.to_string(),
            a.steals.to_string(),
        ]);
    }
    violations
}

fn main() {
    let cli = BenchCli::parse("serve_throughput");
    let smoke = cli.smoke;
    let w = if smoke { &SMOKE } else { &FULL };
    // Default to the production storage plan (half-stored shared backbone);
    // `--precision f32` keeps the trajectory comparable with older runs.
    let precision = cli.precision();
    println!("== serve_throughput: multi-tenant PEFT serving benchmark ({precision} backbone) ==");
    let trace_path = cli.value("--trace").map(PathBuf::from);
    let trace_session = trace_path
        .as_ref()
        .map(|_| TraceSession::start().expect("serve_throughput --trace: session already active"));
    let replica_list: Option<Vec<usize>> = cli.value("--replicas").map(|arg| {
        arg.split(',')
            .map(|s| {
                s.trim()
                    .parse::<usize>()
                    .expect("--replicas takes a comma list of counts, e.g. 1,2,4")
            })
            .collect()
    });
    let violations = if let Some(replica_list) = replica_list {
        // Cluster mode replaces the single-backbone arms: the sweep is its
        // own baseline unit (one collected table), and mixing the two would
        // shift table indices under `--compare`.
        let tenants = cli
            .value("--tenants")
            .map(|t| t.parse::<usize>().expect("--tenants takes a count"))
            .unwrap_or(if smoke { 8 } else { 128 });
        assert!(
            !replica_list.is_empty() && replica_list.iter().all(|&r| r >= 1),
            "--replicas needs at least one count >= 1"
        );
        cluster_sweep(w, precision, &replica_list, tenants)
    } else {
        let registry = Arc::new(AdapterRegistry::in_memory());
        let mut violations = run(
            w,
            StepMode::Sparse,
            precision,
            registry.clone(),
            "long-exposure (sparse)",
        );
        // Fresh registry for the dense arm so tenants cold-start identically.
        violations.extend(run(
            w,
            StepMode::Dense,
            precision,
            Arc::new(AdapterRegistry::in_memory()),
            "dense baseline",
        ));
        println!(
            "\nregistry now holds {} adapters; predictors shared: {}",
            registry.len(),
            registry.predictors().is_some(),
        );
        violations
    };
    if let (Some(session), Some(path)) = (trace_session, trace_path.as_ref()) {
        let trace = session.finish();
        match trace.write_chrome(path) {
            Ok(()) => println!(
                "wrote Chrome trace to {} ({} spans, {} dropped) — load in Perfetto",
                path.display(),
                trace.records.len(),
                trace.dropped
            ),
            Err(e) => eprintln!(
                "serve_throughput: failed to write trace {}: {e}",
                path.display()
            ),
        }
    }
    cli.finish();
    let mut compare_failed = false;
    if let Some(path) = cli.value("--compare") {
        let tolerance = cli
            .value("--tolerance")
            .map(|t| {
                t.parse::<f64>()
                    .expect("--tolerance takes a fraction, e.g. 0.6")
            })
            .unwrap_or(0.6);
        match load_bench_json(std::path::Path::new(&path)) {
            Ok(baseline) => {
                let (checked, regressions) =
                    lx_bench::compare_to_baseline(&baseline, "speedup", tolerance);
                println!(
                    "\nbench-regression gate vs {path}: {} comparisons at {:.0}% tolerance",
                    checked.len(),
                    tolerance * 100.0
                );
                for line in &checked {
                    println!("  {line}");
                }
                for line in &regressions {
                    eprintln!("  REGRESSION {line}");
                }
                if checked.is_empty() && regressions.is_empty() {
                    eprintln!("serve_throughput: baseline matched no rows — wrong file?");
                    compare_failed = true;
                }
                compare_failed |= !regressions.is_empty();
            }
            Err(e) => {
                eprintln!("serve_throughput: cannot load baseline: {e}");
                compare_failed = true;
            }
        }
    }
    if smoke && !violations.is_empty() {
        for v in &violations {
            eprintln!("serve_throughput smoke gate: {v}");
        }
        std::process::exit(1);
    }
    if compare_failed {
        std::process::exit(1);
    }
}
