//! Shared harness for the experiment binaries (one per paper table/figure)
//! and the Criterion benches. See DESIGN.md §3 for the experiment index and
//! EXPERIMENTS.md for paper-vs-measured results.

pub mod cli;
pub mod report;

pub use cli::BenchCli;
pub use report::{compare_to_baseline, emit_json, header, load_bench_json, row, BenchReport};

use long_exposure::engine::{EngineConfig, FinetuneEngine, StepMode};
use lx_data::e2e::E2eGenerator;
use lx_data::{Batcher, SyntheticWorld};
use lx_model::{
    prompt_aware_targets, AdamW, ModelConfig, Optimizer, StepOutcome, TransformerModel,
};
use lx_peft::PeftMethod;
use std::time::Duration;

/// Standard sim-model block size (32 needs seq ≥ 512; most measured runs use
/// 16 so short sequences stay block-aligned).
pub const SIM_BLOCK: usize = 16;

/// Build a sim model with emulated pre-trained structure (see DESIGN.md:
/// activation concentration + ALiBi locality + sharpened attention).
pub fn sim_model(cfg: ModelConfig, seed: u64) -> TransformerModel {
    let mut model = TransformerModel::new(cfg, seed);
    model.induce_activation_sparsity(0.93, 0.25, SIM_BLOCK, seed + 1);
    model.sharpen_attention(3.0);
    model
}

/// Build a calibrated engine over E2E-like data for `(batch, seq)`.
pub fn calibrated_engine(
    cfg: ModelConfig,
    method: PeftMethod,
    batch: usize,
    seq: usize,
    seed: u64,
) -> (FinetuneEngine, Batcher) {
    let mut model = sim_model(cfg.clone(), seed);
    method.apply(&mut model, seed + 2);
    let world = SyntheticWorld::new(cfg.vocab_size as u32, seed + 3);
    let mut batcher = Batcher::new(E2eGenerator::new(world).stream(200_000, seed));
    let mut engine = FinetuneEngine::new(
        model,
        EngineConfig {
            block_size: SIM_BLOCK,
            attn_prob_threshold: 8.0 / seq as f32,
            calib_epochs: 80,
            ..EngineConfig::default()
        },
    );
    let calib: Vec<(Vec<u32>, usize, usize)> = (0..3)
        .map(|_| (batcher.next_batch(batch, seq), batch, seq))
        .collect();
    engine.calibrate(&calib);
    (engine, batcher)
}

/// Run `n` timed steps (after one untimed warm-up) and average the outcomes.
pub fn mean_step(
    engine: &mut FinetuneEngine,
    batcher: &mut Batcher,
    batch: usize,
    seq: usize,
    mode: StepMode,
    n: usize,
    opt: &mut dyn Optimizer,
) -> StepOutcome {
    let prompt = engine.model.embedding.prompt_len();
    let run = |engine: &mut FinetuneEngine, batcher: &mut Batcher, opt: &mut dyn Optimizer| {
        let ids = batcher.next_batch(batch, seq);
        let targets = prompt_aware_targets(&ids, batch, seq, prompt);
        engine.train_step_mode(&ids, &targets, batch, seq, opt, mode)
    };
    let _ = run(engine, batcher, opt); // warm-up
    let mut acc: Option<StepOutcome> = None;
    for i in 0..n {
        let s = run(engine, batcher, opt);
        acc = Some(match acc {
            None => s,
            Some(mut a) => {
                a.loss += s.loss;
                a.predict += s.predict;
                a.forward += s.forward;
                a.backward += s.backward;
                a.optim += s.optim;
                a.attn_density = merge_density(a.attn_density, s.attn_density, i);
                a.mlp_density = merge_density(a.mlp_density, s.mlp_density, i);
                a
            }
        });
    }
    let mut a = acc.expect("n > 0");
    let nf = n as u32;
    a.loss /= n as f32;
    a.predict /= nf;
    a.forward /= nf;
    a.backward /= nf;
    a.optim /= nf;
    a
}

/// Running mean: `acc` already averages `n_seen` samples; fold in one more.
fn merge_density(acc: Option<f32>, next: Option<f32>, n_seen: usize) -> Option<f32> {
    match (acc, next) {
        (Some(a), Some(b)) => Some((a * n_seen as f32 + b) / (n_seen as f32 + 1.0)),
        (a, b) => a.or(b),
    }
}

/// A default optimizer matching common fine-tuning practice.
pub fn default_opt() -> AdamW {
    AdamW::new(1e-3, 0.01)
}

pub fn fmt_ms(d: Duration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_engine_builds_and_steps() {
        let (mut engine, mut batcher) = calibrated_engine(
            ModelConfig::opt_sim_small(),
            PeftMethod::lora_default(),
            1,
            64,
            5,
        );
        let mut opt = default_opt();
        let stats = mean_step(
            &mut engine,
            &mut batcher,
            1,
            64,
            StepMode::Sparse,
            1,
            &mut opt,
        );
        assert!(stats.loss.is_finite());
        assert!(
            stats.mlp_density.unwrap() < 1.0,
            "MLP sparsity should engage"
        );
    }
}
