//! Roofline cost model for fine-tuning steps at paper dimensions.
//!
//! Time per op ≈ max(flops / (η_c · peak_flops), bytes / (η_b · peak_bw)).
//! Efficiency factors are fixed constants (not fitted per experiment); the
//! model is used for *ratios* (speedups, scaling curves), which are
//! insensitive to the absolute calibration.

use lx_model::ModelConfig;
use lx_tensor::Dtype;

/// A GPU platform, using the specs printed in the paper (§VII-A).
#[derive(Debug, Clone)]
pub struct DeviceSpec {
    pub name: String,
    pub mem_bw_gbs: f64,
    pub fp32_tflops: f64,
    /// Tensor-core FP16 peak — training runs mixed precision (§VII-A).
    pub fp16_tflops: f64,
    pub mem_capacity_gb: f64,
}

impl DeviceSpec {
    pub fn a100() -> Self {
        DeviceSpec {
            name: "A100-80GB".into(),
            mem_bw_gbs: 1555.0,
            fp32_tflops: 19.5,
            fp16_tflops: 312.0,
            mem_capacity_gb: 80.0,
        }
    }

    pub fn a6000() -> Self {
        DeviceSpec {
            name: "A6000-48GB".into(),
            mem_bw_gbs: 768.0,
            fp32_tflops: 38.71,
            fp16_tflops: 154.8,
            mem_capacity_gb: 48.0,
        }
    }
}

/// Workload shape for one fine-tuning step.
#[derive(Debug, Clone)]
pub struct WorkloadParams {
    pub batch: usize,
    pub seq: usize,
    /// Attention score-block density relative to the full `s×s` grid
    /// (dense causal implementations still materialise `s²`): 1.0 = dense.
    pub attn_density: f64,
    /// Active fraction of MLP neuron blocks: 1.0 = dense.
    pub mlp_density: f64,
    /// Fraction of parameters that are trainable (drives dW + optimizer).
    pub trainable_fraction: f64,
    /// Whether the Long Exposure predictors run (adds their O(s) overhead).
    pub predictors: bool,
}

impl WorkloadParams {
    /// Dense PEFT baseline.
    pub fn dense(batch: usize, seq: usize, trainable_fraction: f64) -> Self {
        WorkloadParams {
            batch,
            seq,
            attn_density: 1.0,
            mlp_density: 1.0,
            trainable_fraction,
            predictors: false,
        }
    }

    /// Long Exposure with the given densities.
    pub fn long_exposure(
        batch: usize,
        seq: usize,
        trainable_fraction: f64,
        attn_density: f64,
        mlp_density: f64,
    ) -> Self {
        WorkloadParams {
            batch,
            seq,
            attn_density,
            mlp_density,
            trainable_fraction,
            predictors: true,
        }
    }
}

/// FLOP / byte / time breakdown of one step.
#[derive(Debug, Clone, Default)]
pub struct StepCost {
    pub forward_s: f64,
    pub backward_s: f64,
    pub optim_s: f64,
    pub predict_s: f64,
    pub flops: f64,
    pub bytes: f64,
}

impl StepCost {
    pub fn total_s(&self) -> f64 {
        self.forward_s + self.backward_s + self.optim_s + self.predict_s
    }
}

/// Achievable-fraction-of-peak constants (training kernels, mixed precision).
const FLOP_EFF: f64 = 0.45;
const BW_EFF: f64 = 0.70;

fn roofline(dev: &DeviceSpec, flops: f64, bytes: f64) -> f64 {
    let t_c = flops / (FLOP_EFF * dev.fp16_tflops * 1e12);
    let t_b = bytes / (BW_EFF * dev.mem_bw_gbs * 1e9);
    t_c.max(t_b)
}

/// Forward-pass FLOPs and bytes for one step.
fn forward_cost(cfg: &ModelConfig, w: &WorkloadParams) -> (f64, f64) {
    let (b, s) = (w.batch as f64, w.seq as f64);
    let d = cfg.d_model as f64;
    let ff = cfg.d_ff as f64;
    let l = cfg.n_layers as f64;
    let v = cfg.vocab_size as f64;
    let tokens = b * s;
    // Per layer: QKVO projections (dense), scores+context (density-scaled),
    // MLP (density-scaled).
    let proj = 4.0 * 2.0 * tokens * d * d;
    let attn = 2.0 * 2.0 * b * s * s * d * w.attn_density;
    let mlp = 2.0 * 2.0 * tokens * d * ff * w.mlp_density;
    let head = 2.0 * tokens * d * v;
    let flops = l * (proj + attn + mlp) + head;
    // Bytes: weights streamed once (f16 storage — the `F16Frozen` plan),
    // activations written/read (f32). Element sizes come from the storage
    // layer's dtype table so the model tracks real storage.
    let f16 = Dtype::F16.size_bytes() as f64;
    let f32b = Dtype::F32.size_bytes() as f64;
    let weight_bytes = f16 * (l * (4.0 * d * d + 2.0 * d * ff * w.mlp_density) + v * d);
    // Attention score traffic: materialise scores, softmax (read+write),
    // read for P·V ≈ 4 passes over B·h·s² f32 per layer — the O(s²) memory
    // wall that block-sparse attention reduces to O(active blocks).
    let attn_bytes = 4.0 * f32b * b * (cfg.n_heads as f64) * s * s * w.attn_density;
    let act_bytes = f32b * (l * tokens * d * 6.0 + tokens * v) + l * attn_bytes;
    (flops, weight_bytes + act_bytes)
}

/// Full step cost on a device.
pub fn step_cost(dev: &DeviceSpec, cfg: &ModelConfig, w: &WorkloadParams) -> StepCost {
    let (f_flops, f_bytes) = forward_cost(cfg, w);
    // Backward: dX everywhere (≈ forward) + dW only for the trainable
    // fraction (≈ forward weighted by that fraction).
    let b_flops = f_flops * (1.0 + w.trainable_fraction);
    let b_bytes = f_bytes * (1.0 + w.trainable_fraction);
    // Optimizer: ~12 flops and four f32 words of traffic per trainable
    // parameter (Adam reads/writes m, v, the grad, and the value).
    let trainable = cfg.param_count() as f64 * w.trainable_fraction;
    let o_flops = 12.0 * trainable;
    let o_bytes = 4.0 * Dtype::F32.size_bytes() as f64 * trainable;
    // Predictors (§V-C): O(s·d·r) per layer per component.
    let (p_flops, p_bytes) = if w.predictors {
        let (b_, s_) = (w.batch as f64, w.seq as f64);
        let d = cfg.d_model as f64;
        let r = 8.0;
        let l = cfg.n_layers as f64;
        let n_blk = cfg.d_ff as f64 / 32.0;
        let per_layer = 2.0 * b_ * (s_ / 32.0) * d * r * 2.0 // attn q̂,k̂
            + 2.0 * b_ * s_ * d * n_blk / 16.0; // mlp (downsampled rows)
        (l * per_layer, l * 2.0 * d * (2.0 * r + n_blk))
    } else {
        (0.0, 0.0)
    };
    StepCost {
        forward_s: roofline(dev, f_flops, f_bytes),
        backward_s: roofline(dev, b_flops, b_bytes),
        optim_s: roofline(dev, o_flops, o_bytes),
        predict_s: roofline(dev, p_flops, p_bytes),
        flops: f_flops + b_flops + o_flops + p_flops,
        bytes: f_bytes + b_bytes + o_bytes + p_bytes,
    }
}

/// Strong-scaling estimate: per-step time with the batch sharded over `n`
/// devices plus a latency-dominated all-reduce of trainable gradients.
pub fn scaled_step_cost(
    dev: &DeviceSpec,
    cfg: &ModelConfig,
    w: &WorkloadParams,
    n_devices: usize,
) -> f64 {
    let mut shard = w.clone();
    shard.batch = (w.batch / n_devices).max(1);
    let compute = step_cost(dev, cfg, &shard).total_s();
    if n_devices == 1 {
        return compute;
    }
    // Ring all-reduce of trainable grads over NVLink-ish 200 GB/s.
    let trainable_bytes = cfg.param_count() as f64 * w.trainable_fraction * 4.0;
    let allreduce = 2.0 * trainable_bytes / (200e9) + 20e-6 * (n_devices as f64);
    compute + allreduce
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lora_frac() -> f64 {
        0.003 // ~0.3% trainable, typical LoRA
    }

    #[test]
    fn dense_longer_sequences_cost_superlinear() {
        let dev = DeviceSpec::a100();
        let cfg = ModelConfig::opt_1_3b();
        let t512 = step_cost(&dev, &cfg, &WorkloadParams::dense(4, 512, lora_frac())).total_s();
        let t1024 = step_cost(&dev, &cfg, &WorkloadParams::dense(4, 1024, lora_frac())).total_s();
        assert!(
            t1024 > 2.0 * t512,
            "quadratic attention: {t1024} vs 2×{t512}"
        );
    }

    #[test]
    fn long_exposure_speedup_grows_with_seq() {
        let dev = DeviceSpec::a100();
        let cfg = ModelConfig::opt_1_3b();
        let speedup = |seq: usize| {
            let dense =
                step_cost(&dev, &cfg, &WorkloadParams::dense(4, seq, lora_frac())).total_s();
            let lx = step_cost(
                &dev,
                &cfg,
                &WorkloadParams::long_exposure(4, seq, lora_frac(), 0.12, 0.45),
            )
            .total_s();
            dense / lx
        };
        let s512 = speedup(512);
        let s1024 = speedup(1024);
        assert!(
            s1024 > s512,
            "speedup must grow with seq: {s512} -> {s1024}"
        );
        assert!(s512 > 1.0);
        // Paper's headline band: ~1.2–1.5× at 512, ~2–3× at 1024.
        assert!((1.05..2.2).contains(&s512), "s512 = {s512}");
        assert!((1.5..3.5).contains(&s1024), "s1024 = {s1024}");
    }

    #[test]
    fn table1_shape_full_vs_lora() {
        // Table I: LoRA ≈ 18% faster than full fine-tuning end to end, with
        // the optimizer step nearly eliminated.
        let dev = DeviceSpec::a100();
        let cfg = ModelConfig::opt_1_3b();
        let full = step_cost(&dev, &cfg, &WorkloadParams::dense(4, 512, 1.0));
        let lora = step_cost(&dev, &cfg, &WorkloadParams::dense(4, 512, lora_frac()));
        assert!(lora.total_s() < full.total_s());
        assert!(lora.optim_s < full.optim_s / 50.0);
        let reduction = 1.0 - lora.total_s() / full.total_s();
        assert!((0.05..0.45).contains(&reduction), "reduction {reduction}");
        // Backward dominates in both (paper: ~55-59%).
        assert!(full.backward_s > full.forward_s);
    }

    #[test]
    fn predictor_overhead_is_small() {
        let dev = DeviceSpec::a100();
        let cfg = ModelConfig::opt_1_3b();
        let lx = step_cost(
            &dev,
            &cfg,
            &WorkloadParams::long_exposure(4, 1024, lora_frac(), 0.12, 0.45),
        );
        assert!(
            lx.predict_s < 0.1 * lx.total_s(),
            "predictor {} vs total {}",
            lx.predict_s,
            lx.total_s()
        );
    }

    #[test]
    fn platforms_agree_on_speedup_ratio() {
        // Paper Fig. 7: speedups are consistent across A100 and A6000
        // because Long Exposure removes computation, not device time.
        let cfg = ModelConfig::opt_1_3b();
        let speedup = |dev: &DeviceSpec| {
            let dense =
                step_cost(dev, &cfg, &WorkloadParams::dense(4, 1024, lora_frac())).total_s();
            let lx = step_cost(
                dev,
                &cfg,
                &WorkloadParams::long_exposure(4, 1024, lora_frac(), 0.12, 0.45),
            )
            .total_s();
            dense / lx
        };
        let s100 = speedup(&DeviceSpec::a100());
        let s6000 = speedup(&DeviceSpec::a6000());
        assert!((s100 / s6000 - 1.0).abs() < 0.25, "{s100} vs {s6000}");
        // A100 is absolutely faster (more FP16 flops and bandwidth).
        let t100 = step_cost(
            &DeviceSpec::a100(),
            &cfg,
            &WorkloadParams::dense(4, 512, lora_frac()),
        )
        .total_s();
        let t6000 = step_cost(
            &DeviceSpec::a6000(),
            &cfg,
            &WorkloadParams::dense(4, 512, lora_frac()),
        )
        .total_s();
        assert!(t100 < t6000, "{t100} vs {t6000}");
    }

    #[test]
    fn strong_scaling_is_nearly_linear() {
        let dev = DeviceSpec::a100();
        let cfg = ModelConfig::opt_350m();
        let w = WorkloadParams::long_exposure(8, 512, lora_frac(), 0.15, 0.5);
        let t1 = scaled_step_cost(&dev, &cfg, &w, 1);
        let t2 = scaled_step_cost(&dev, &cfg, &w, 2);
        let t4 = scaled_step_cost(&dev, &cfg, &w, 4);
        assert!(t2 < t1 && t4 < t2);
        let eff4 = t1 / (4.0 * t4);
        assert!(eff4 > 0.7, "4-GPU efficiency {eff4}");
    }

    #[test]
    fn absolute_magnitude_is_plausible() {
        // Paper Table I: OPT-1.3B LoRA ≈ 335 ms/batch on A100 (batch 4,
        // seq 512). The model should land within ~3× of that.
        let dev = DeviceSpec::a100();
        let cfg = ModelConfig::opt_1_3b();
        let t = step_cost(&dev, &cfg, &WorkloadParams::dense(4, 512, lora_frac())).total_s();
        assert!((0.05..1.0).contains(&t), "modelled step time {t}s");
    }
}
