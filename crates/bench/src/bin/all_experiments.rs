//! Run every experiment binary in sequence, mirroring the paper's full
//! evaluation section. Equivalent to invoking each `--bin` by hand; results
//! stream to stdout (tee to a file to archive them). All flags are forwarded
//! to every bin (`--json` refreshes the whole `BENCH_*.json` perf
//! trajectory; bins ignore flags they don't know).

use std::process::Command;

const BINS: &[&str] = &[
    "table1_breakdown",
    "table4_accuracy",
    "fig7_speedup",
    "fig8_memory",
    "fig9_sparsity",
    "fig10_breakdown",
    "fig11_predictor",
    "fig12_operators",
    "fig13_gpt2",
    "fig14_scaling",
    "ablation_predictor",
    "kernel_bench",
];

fn main() {
    let cli = lx_bench::BenchCli::parse("all_experiments");
    let exe = std::env::current_exe().expect("current exe");
    let dir = exe.parent().expect("bin dir");
    let forward = cli.forwarded();
    let mut failed = Vec::new();
    for bin in BINS {
        println!("\n######################################################");
        println!("### {bin}");
        println!("######################################################\n");
        let status = Command::new(dir.join(bin))
            .args(forward)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        if !status.success() {
            failed.push(*bin);
        }
    }
    if failed.is_empty() {
        println!("\nall {} experiments completed", BINS.len());
    } else {
        eprintln!("\nFAILED: {failed:?}");
        std::process::exit(1);
    }
}
