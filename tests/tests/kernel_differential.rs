//! Differential property tests: the `Packed` backend (including its
//! runtime-detected SIMD microkernel, when the host has one) must match the
//! `Reference` scalar oracle bit-tolerantly (≤1e-4 relative) on every GEMM
//! variant, across odd and degenerate shapes, strided views, and the
//! block-sparse / neuron-sparse operator shapes the sparse crate issues.
//!
//! Shape axes are seeded sweeps, not proptest: the workspace is offline, and
//! deterministic sweeps reproduce exactly in CI.

use lx_kernels::{Epilogue, KernelBackend, MR, NR, PACKED, REFERENCE};
use lx_sparse::attention::{block_data_to_dense, dsd, dsd_tn, sdd_nt, CausalFill};
use lx_sparse::neuron::{fc1_forward, fc2_forward, ColMajorWeights, NeuronBlockSet};
use lx_sparse::patterns::PatternSpec;
use lx_sparse::BlockCsr;
use lx_tensor::rng::randn_vec;

const TOL: f32 = 1e-4;

fn assert_close(what: &str, got: &[f32], want: &[f32]) {
    assert_eq!(got.len(), want.len(), "{what}: length");
    for (i, (x, y)) in got.iter().zip(want).enumerate() {
        assert!(
            (x - y).abs() <= TOL * (1.0 + y.abs()),
            "{what}: idx {i}: {x} vs {y}"
        );
    }
}

/// The sweep axis: degenerate, around both register tiles, around the KC
/// cache block, and a larger-than-one-block size.
fn interesting_sizes() -> Vec<usize> {
    let mut v = vec![0, 1, 3, MR - 1, MR, MR + 1, NR - 1, NR, NR + 1, 40];
    v.sort_unstable();
    v.dedup();
    v
}

#[test]
fn packed_matches_reference_on_gemm_shape_sweep() {
    let sizes = interesting_sizes();
    let mut seed = 0u64;
    for &m in &sizes {
        for &k in &sizes {
            for &n in &sizes {
                seed += 1;
                let a = randn_vec(m * k, 1.0, seed);
                let b = randn_vec(k * n, 1.0, seed + 1000);
                let mut c_ref = randn_vec(m * n, 1.0, seed + 2000);
                let mut c_packed = c_ref.clone();
                // beta = 0.5 checks both the product and the C pre-scaling.
                REFERENCE.gemm(
                    m,
                    k,
                    n,
                    &a,
                    k.max(1),
                    &b,
                    n.max(1),
                    &mut c_ref,
                    n.max(1),
                    0.5,
                );
                PACKED.gemm(
                    m,
                    k,
                    n,
                    &a,
                    k.max(1),
                    &b,
                    n.max(1),
                    &mut c_packed,
                    n.max(1),
                    0.5,
                );
                assert_close(&format!("gemm {m}x{k}x{n}"), &c_packed, &c_ref);
            }
        }
    }
}

#[test]
fn packed_matches_reference_on_nt_tn_sweep() {
    let sizes = interesting_sizes();
    let mut seed = 50_000u64;
    for &m in &sizes {
        for &k in &sizes {
            for &n in &sizes {
                seed += 1;
                let a_nt = randn_vec(m * k, 1.0, seed);
                let b_nt = randn_vec(n * k, 1.0, seed + 1000);
                let mut c_ref = vec![0.0; m * n];
                let mut c_packed = vec![0.0; m * n];
                REFERENCE.gemm_nt(
                    m,
                    k,
                    n,
                    &a_nt,
                    k.max(1),
                    &b_nt,
                    k.max(1),
                    &mut c_ref,
                    n.max(1),
                    0.0,
                );
                PACKED.gemm_nt(
                    m,
                    k,
                    n,
                    &a_nt,
                    k.max(1),
                    &b_nt,
                    k.max(1),
                    &mut c_packed,
                    n.max(1),
                    0.0,
                );
                assert_close(&format!("gemm_nt {m}x{k}x{n}"), &c_packed, &c_ref);

                let a_tn = randn_vec(k * m, 1.0, seed + 2000);
                let b_tn = randn_vec(k * n, 1.0, seed + 3000);
                let mut c_ref = randn_vec(m * n, 1.0, seed + 4000);
                let mut c_packed = c_ref.clone();
                REFERENCE.gemm_tn(
                    m,
                    k,
                    n,
                    &a_tn,
                    m.max(1),
                    &b_tn,
                    n.max(1),
                    &mut c_ref,
                    n.max(1),
                    1.0,
                );
                PACKED.gemm_tn(
                    m,
                    k,
                    n,
                    &a_tn,
                    m.max(1),
                    &b_tn,
                    n.max(1),
                    &mut c_packed,
                    n.max(1),
                    1.0,
                );
                assert_close(&format!("gemm_tn {m}x{k}x{n}"), &c_packed, &c_ref);
            }
        }
    }
}

#[test]
fn packed_matches_reference_on_strided_views() {
    // The exact window shapes the sparse operators issue: compact activation
    // matrices addressed with lda = width, C written into a strided slab.
    let (rows, width, b, d) = (23, 3 * NR, NR, 37);
    let act = randn_vec(rows * width, 1.0, 7);
    let w = randn_vec(b * d, 1.0, 8);
    for block in 0..width / b {
        let a_win = &act[block * b..];
        let mut c_ref = vec![0.0; rows * d];
        let mut c_packed = vec![0.0; rows * d];
        REFERENCE.gemm(rows, b, d, a_win, width, &w, d, &mut c_ref, d, 0.0);
        PACKED.gemm(rows, b, d, a_win, width, &w, d, &mut c_packed, d, 0.0);
        assert_close(&format!("strided block {block}"), &c_packed, &c_ref);

        // Strided C: write one block column of a wide output.
        let mut y_ref = vec![0.0; rows * width];
        let mut y_packed = vec![0.0; rows * width];
        let wt = randn_vec(b * d, 1.0, 9);
        REFERENCE.gemm_nt(
            rows,
            d,
            b,
            &c_ref,
            d,
            &wt,
            d,
            &mut y_ref[block * b..],
            width,
            0.0,
        );
        PACKED.gemm_nt(
            rows,
            d,
            b,
            &c_packed,
            d,
            &wt,
            d,
            &mut y_packed[block * b..],
            width,
            0.0,
        );
        assert_close(&format!("strided C block {block}"), &y_packed, &y_ref);
    }
}

#[test]
fn large_shape_stays_within_tolerance() {
    // One shape big enough to traverse several KC blocks and NC panels, where
    // f32 summation-order differences accumulate the most.
    let (m, k, n) = (70, 600, 70);
    let a = randn_vec(m * k, 1.0, 11);
    let b = randn_vec(k * n, 1.0, 12);
    let mut c_ref = vec![0.0; m * n];
    let mut c_packed = vec![0.0; m * n];
    REFERENCE.gemm(m, k, n, &a, k, &b, n, &mut c_ref, n, 0.0);
    PACKED.gemm(m, k, n, &a, k, &b, n, &mut c_packed, n, 0.0);
    assert_close("large gemm", &c_packed, &c_ref);
}

/// Mixed-precision differential: the f16-B variants (fused pack-time decode
/// in `Packed`, on-load decode in `Reference`) must match the oracle of
/// "decode all of B to f32, then run the f32 kernel" within the usual
/// backend tolerance — across the same shape grid as the f32 sweeps.
#[test]
fn f16_b_gemm_matches_decoded_oracle_on_shape_sweep() {
    let sizes = interesting_sizes();
    let mut seed = 100_000u64;
    for &m in &sizes {
        for &k in &sizes {
            for &n in &sizes {
                seed += 1;
                let a = randn_vec(m * k, 1.0, seed);
                let b32 = randn_vec(k * n, 1.0, seed + 1000);
                let bits = lx_kernels::half::encode_slice(&b32);
                // Oracle B: the exact f32 values the f16 storage holds.
                let decoded: Vec<f32> = bits
                    .iter()
                    .map(|&x| lx_kernels::half::f16_bits_to_f32(x))
                    .collect();
                let mut want = randn_vec(m * n, 1.0, seed + 2000);
                let mut got_ref = want.clone();
                let mut got_packed = want.clone();
                REFERENCE.gemm(
                    m,
                    k,
                    n,
                    &a,
                    k.max(1),
                    &decoded,
                    n.max(1),
                    &mut want,
                    n.max(1),
                    0.5,
                );
                REFERENCE.gemm_f16(
                    m,
                    k,
                    n,
                    &a,
                    k.max(1),
                    &bits,
                    n.max(1),
                    &mut got_ref,
                    n.max(1),
                    0.5,
                );
                PACKED.gemm_f16(
                    m,
                    k,
                    n,
                    &a,
                    k.max(1),
                    &bits,
                    n.max(1),
                    &mut got_packed,
                    n.max(1),
                    0.5,
                );
                assert_close(&format!("ref gemm_f16 {m}x{k}x{n}"), &got_ref, &want);
                assert_close(&format!("packed gemm_f16 {m}x{k}x{n}"), &got_packed, &want);
            }
        }
    }
}

#[test]
fn f16_b_gemm_nt_matches_decoded_oracle_on_shape_sweep() {
    let sizes = interesting_sizes();
    let mut seed = 150_000u64;
    for &m in &sizes {
        for &k in &sizes {
            for &n in &sizes {
                seed += 1;
                let a = randn_vec(m * k, 1.0, seed);
                let b32 = randn_vec(n * k, 1.0, seed + 1000);
                let bits = lx_kernels::half::encode_slice(&b32);
                let decoded: Vec<f32> = bits
                    .iter()
                    .map(|&x| lx_kernels::half::f16_bits_to_f32(x))
                    .collect();
                let mut want = vec![0.0; m * n];
                let mut got_ref = vec![0.0; m * n];
                let mut got_packed = vec![0.0; m * n];
                REFERENCE.gemm_nt(
                    m,
                    k,
                    n,
                    &a,
                    k.max(1),
                    &decoded,
                    k.max(1),
                    &mut want,
                    n.max(1),
                    0.0,
                );
                REFERENCE.gemm_nt_f16(
                    m,
                    k,
                    n,
                    &a,
                    k.max(1),
                    &bits,
                    k.max(1),
                    &mut got_ref,
                    n.max(1),
                    0.0,
                );
                PACKED.gemm_nt_f16(
                    m,
                    k,
                    n,
                    &a,
                    k.max(1),
                    &bits,
                    k.max(1),
                    &mut got_packed,
                    n.max(1),
                    0.0,
                );
                assert_close(&format!("ref gemm_nt_f16 {m}x{k}x{n}"), &got_ref, &want);
                assert_close(
                    &format!("packed gemm_nt_f16 {m}x{k}x{n}"),
                    &got_packed,
                    &want,
                );
            }
        }
    }
}

fn assert_bits(what: &str, got: &[f32], want: &[f32]) {
    assert_eq!(got.len(), want.len(), "{what}: length");
    for (i, (x, y)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: idx {i}: {x} vs {y} (bitwise)"
        );
    }
}

/// Apply `ep` to `c` the way the pre-fusion model code did: a full bias pass,
/// then a full activation pass. The fused write-back must reproduce this
/// bit-for-bit — per element the same scalar ops in the same order.
fn manual_epilogue(c: &mut [f32], n: usize, ep: Epilogue<'_>) {
    match ep {
        Epilogue::None => {}
        Epilogue::Bias(bias) => {
            for (i, v) in c.iter_mut().enumerate() {
                *v += bias[i % n.max(1)];
            }
        }
        Epilogue::BiasGelu(bias) => {
            for (i, v) in c.iter_mut().enumerate() {
                *v += bias[i % n.max(1)];
            }
            for v in c.iter_mut() {
                *v = lx_kernels::gelu(*v);
            }
        }
    }
}

/// Fused epilogue oracle sweep over the f32 entry points: for every backend,
/// shape, and epilogue kind, `gemm_ep` must equal "same backend's plain gemm,
/// then the unfused bias/GELU passes" — bitwise, nn and nt forms.
#[test]
fn fused_epilogues_match_unfused_composition_bitwise() {
    let sizes = interesting_sizes();
    let backends: [&dyn KernelBackend; 2] = [&REFERENCE, &PACKED];
    let mut seed = 200_000u64;
    for &m in &sizes {
        for &k in &sizes {
            for &n in &sizes {
                seed += 1;
                let a = randn_vec(m * k, 1.0, seed);
                let b = randn_vec(k * n, 1.0, seed + 1000);
                let b_t = randn_vec(n * k, 1.0, seed + 2000);
                let bias = randn_vec(n, 1.0, seed + 3000);
                let c0 = randn_vec(m * n, 1.0, seed + 4000);
                for be in backends {
                    for fused_ep in [Epilogue::Bias(&bias), Epilogue::BiasGelu(&bias)] {
                        // beta = 0.5: the epilogue must apply after the
                        // pre-scale *and* the accumulation, never between.
                        let mut want = c0.clone();
                        be.gemm(
                            m,
                            k,
                            n,
                            &a,
                            k.max(1),
                            &b,
                            n.max(1),
                            &mut want,
                            n.max(1),
                            0.5,
                        );
                        manual_epilogue(&mut want, n, fused_ep);
                        let mut got = c0.clone();
                        be.gemm_ep(
                            m,
                            k,
                            n,
                            &a,
                            k.max(1),
                            &b,
                            n.max(1),
                            &mut got,
                            n.max(1),
                            0.5,
                            fused_ep,
                        );
                        assert_bits(
                            &format!("{} gemm_ep {m}x{k}x{n} {fused_ep:?}", be.name()),
                            &got,
                            &want,
                        );

                        let mut want_nt = c0.clone();
                        be.gemm_nt(
                            m,
                            k,
                            n,
                            &a,
                            k.max(1),
                            &b_t,
                            k.max(1),
                            &mut want_nt,
                            n.max(1),
                            0.0,
                        );
                        manual_epilogue(&mut want_nt, n, fused_ep);
                        let mut got_nt = c0.clone();
                        be.gemm_nt_ep(
                            m,
                            k,
                            n,
                            &a,
                            k.max(1),
                            &b_t,
                            k.max(1),
                            &mut got_nt,
                            n.max(1),
                            0.0,
                            fused_ep,
                        );
                        assert_bits(
                            &format!("{} gemm_nt_ep {m}x{k}x{n} {fused_ep:?}", be.name()),
                            &got_nt,
                            &want_nt,
                        );
                    }
                }
            }
        }
    }
}

/// The same fused-vs-unfused oracle for the mixed-precision entry points
/// (f16, int8-block, NF4-block, N:M-sparse B), on a reduced grid: each
/// dtype's `_ep` variant must equal its own plain variant plus the manual
/// passes, bitwise, on both backends (`Reference` exercises the defaulted
/// trait methods).
#[test]
fn fused_epilogues_match_on_quantized_dtypes() {
    let sizes = [0usize, 1, MR, NR + 1, 40];
    let backends: [&dyn KernelBackend; 2] = [&REFERENCE, &PACKED];
    let mut seed = 300_000u64;
    for &m in &sizes {
        for &k in &sizes {
            for &n in &sizes {
                seed += 1;
                let a = randn_vec(m * k, 1.0, seed);
                let b = randn_vec(k * n, 1.0, seed + 1000);
                let bias = randn_vec(n, 1.0, seed + 2000);
                let bits = lx_kernels::half::encode_slice(&b);
                let (q8c, q8s) = lx_quant::q8::quantize(&b);
                let (q4c, q4s) = lx_quant::nf4::quantize(&b);
                let (nmv, nmm) = lx_quant::nm::encode(&b, k, n, 2, 4);
                for be in backends {
                    for fused_ep in [Epilogue::Bias(&bias), Epilogue::BiasGelu(&bias)] {
                        let mut want = vec![0.0; m * n];
                        be.gemm_f16(
                            m,
                            k,
                            n,
                            &a,
                            k.max(1),
                            &bits,
                            n.max(1),
                            &mut want,
                            n.max(1),
                            0.0,
                        );
                        manual_epilogue(&mut want, n, fused_ep);
                        let mut got = vec![0.0; m * n];
                        be.gemm_f16_ep(
                            m,
                            k,
                            n,
                            &a,
                            k.max(1),
                            &bits,
                            n.max(1),
                            &mut got,
                            n.max(1),
                            0.0,
                            fused_ep,
                        );
                        assert_bits(
                            &format!("{} gemm_f16_ep {m}x{k}x{n}", be.name()),
                            &got,
                            &want,
                        );

                        let q8 = lx_kernels::Q8View::new(&q8c, &q8s);
                        let mut want = vec![0.0; m * n];
                        be.gemm_q8(
                            m,
                            k,
                            n,
                            &a,
                            k.max(1),
                            q8,
                            n.max(1),
                            &mut want,
                            n.max(1),
                            0.0,
                        );
                        manual_epilogue(&mut want, n, fused_ep);
                        let mut got = vec![0.0; m * n];
                        be.gemm_q8_ep(
                            m,
                            k,
                            n,
                            &a,
                            k.max(1),
                            q8,
                            n.max(1),
                            &mut got,
                            n.max(1),
                            0.0,
                            fused_ep,
                        );
                        assert_bits(
                            &format!("{} gemm_q8_ep {m}x{k}x{n}", be.name()),
                            &got,
                            &want,
                        );

                        let q4 = lx_kernels::Q4View::new(&q4c, &q4s, k * n);
                        let mut want = vec![0.0; m * n];
                        be.gemm_q4(
                            m,
                            k,
                            n,
                            &a,
                            k.max(1),
                            q4,
                            n.max(1),
                            &mut want,
                            n.max(1),
                            0.0,
                        );
                        manual_epilogue(&mut want, n, fused_ep);
                        let mut got = vec![0.0; m * n];
                        be.gemm_q4_ep(
                            m,
                            k,
                            n,
                            &a,
                            k.max(1),
                            q4,
                            n.max(1),
                            &mut got,
                            n.max(1),
                            0.0,
                            fused_ep,
                        );
                        assert_bits(
                            &format!("{} gemm_q4_ep {m}x{k}x{n}", be.name()),
                            &got,
                            &want,
                        );

                        let nm = lx_kernels::NmView::new(&nmv, &nmm, k, n, 2, 4);
                        let mut want = vec![0.0; m * n];
                        be.gemm_nm(
                            m,
                            k,
                            n,
                            &a,
                            k.max(1),
                            nm,
                            n.max(1),
                            &mut want,
                            n.max(1),
                            0.0,
                        );
                        manual_epilogue(&mut want, n, fused_ep);
                        let mut got = vec![0.0; m * n];
                        be.gemm_nm_ep(
                            m,
                            k,
                            n,
                            &a,
                            k.max(1),
                            nm,
                            n.max(1),
                            &mut got,
                            n.max(1),
                            0.0,
                            fused_ep,
                        );
                        assert_bits(
                            &format!("{} gemm_nm_ep {m}x{k}x{n}", be.name()),
                            &got,
                            &want,
                        );
                    }
                }
            }
        }
    }
}

/// N:M codec round-trip at integration level: every tail length (`cols % 4`
/// covering 0..=3 plus sub-group rows), an all-zero group (kept zeros), and
/// an absent group (external mask byte 0) must decode bit-identically to the
/// nm-rounded dense matrix, through both the bulk decode and the flat `get`.
#[test]
fn nm_codec_round_trip_covers_tail_zero_and_absent_groups() {
    for (rows, cols) in [
        (1usize, 4usize),
        (5, 8),
        (3, 9),
        (3, 10),
        (3, 11),
        (2, 3),
        (4, 40),
    ] {
        let seed = (rows * 100 + cols) as u64;
        let dense = randn_vec(rows * cols, 1.0, seed);
        let mut want = dense.clone();
        lx_quant::nm::round_slice(&mut want, rows, cols, 2, 4);
        let (vals, masks) = lx_quant::nm::encode(&dense, rows, cols, 2, 4);
        let mut got = vec![f32::NAN; rows * cols];
        lx_quant::nm::decode(&vals, &masks, rows, cols, 2, 4, &mut got);
        assert_bits(&format!("nm round-trip {rows}x{cols}"), &got, &want);
        let view = lx_kernels::NmView::new(&vals, &masks, rows, cols, 2, 4);
        for (i, &w) in want.iter().enumerate() {
            assert_eq!(
                view.get(i).to_bits(),
                w.to_bits(),
                "nm get {rows}x{cols} idx {i}"
            );
        }
    }

    // A group of stored zeros still owns mask bits and slots; a group with an
    // external mask byte of 0 is *absent* (zero-padded slots). Both decode to
    // exact zeros, matching `apply_mask` on the dense original.
    let mut dense = randn_vec(12, 1.0, 77);
    for v in dense[4..8].iter_mut() {
        *v = 0.0;
    }
    let mut masks = lx_quant::nm::prune_mask(&dense, 1, 12, 2, 4);
    masks[2] = 0; // third group absent entirely
    let vals = lx_quant::nm::encode_with_mask(&dense, 1, 12, 2, 4, &masks);
    let mut got = vec![f32::NAN; 12];
    lx_quant::nm::decode(&vals, &masks, 1, 12, 2, 4, &mut got);
    let mut want = dense.clone();
    // Group 0 prunes 2 of its 4 nonzeros, group 1 was already zero, the
    // absent group prunes all 4 → 6 violations against the raw dense buffer.
    assert_eq!(lx_quant::nm::apply_mask(&mut want, &masks, 1, 12, 4), 6);
    assert_bits("nm zero/absent groups", &got, &want);
}

/// N:M B variants against the decode-up-front oracle. Unlike the quantized
/// dtypes this codec is lossless (kept bits verbatim, pruned positions exact
/// zero), so each backend's `gemm_nm`/`gemm_nt_nm` must be **bit-identical**
/// to decoding B and running that same backend's f32 kernel — `Reference`
/// via its on-load row decode, `Packed` via the pack-time group expansion
/// with the all-zero-group skip.
#[test]
fn nm_gemm_matches_decoded_oracle_bitwise_on_shape_sweep() {
    let sizes = interesting_sizes();
    let backends: [&dyn KernelBackend; 2] = [&REFERENCE, &PACKED];
    let mut seed = 600_000u64;
    for &m in &sizes {
        for &k in &sizes {
            for &n in &sizes {
                seed += 1;
                let a = randn_vec(m * k, 1.0, seed);
                let b_nn = randn_vec(k * n, 1.0, seed + 1000);
                let b_nt = randn_vec(n * k, 1.0, seed + 2000);
                let (vals_nn, masks_nn) = lx_quant::nm::encode(&b_nn, k, n, 2, 4);
                let (vals_nt, masks_nt) = lx_quant::nm::encode(&b_nt, n, k, 2, 4);
                let mut dec_nn = vec![0.0; k * n];
                let mut dec_nt = vec![0.0; n * k];
                lx_quant::nm::decode(&vals_nn, &masks_nn, k, n, 2, 4, &mut dec_nn);
                lx_quant::nm::decode(&vals_nt, &masks_nt, n, k, 2, 4, &mut dec_nt);
                let c0 = randn_vec(m * n, 1.0, seed + 3000);
                for be in backends {
                    // beta = 0.5 checks the product and the C pre-scaling.
                    let view = lx_kernels::NmView::new(&vals_nn, &masks_nn, k, n, 2, 4);
                    let mut want = c0.clone();
                    be.gemm(
                        m,
                        k,
                        n,
                        &a,
                        k.max(1),
                        &dec_nn,
                        n.max(1),
                        &mut want,
                        n.max(1),
                        0.5,
                    );
                    let mut got = c0.clone();
                    be.gemm_nm(
                        m,
                        k,
                        n,
                        &a,
                        k.max(1),
                        view,
                        n.max(1),
                        &mut got,
                        n.max(1),
                        0.5,
                    );
                    assert_bits(&format!("{} gemm_nm {m}x{k}x{n}", be.name()), &got, &want);

                    let view = lx_kernels::NmView::new(&vals_nt, &masks_nt, n, k, 2, 4);
                    let mut want = vec![0.0; m * n];
                    be.gemm_nt(
                        m,
                        k,
                        n,
                        &a,
                        k.max(1),
                        &dec_nt,
                        k.max(1),
                        &mut want,
                        n.max(1),
                        0.0,
                    );
                    let mut got = vec![0.0; m * n];
                    be.gemm_nt_nm(
                        m,
                        k,
                        n,
                        &a,
                        k.max(1),
                        view,
                        k.max(1),
                        &mut got,
                        n.max(1),
                        0.0,
                    );
                    assert_bits(
                        &format!("{} gemm_nt_nm {m}x{k}x{n}", be.name()),
                        &got,
                        &want,
                    );
                }
            }
        }
    }
}

/// N:M GEMM into a strided C window (one block column of a wide slab, the
/// layout the sparse FC1 writes): the write must stay inside the window and
/// match the decoded-dense run bit for bit on both backends, through both
/// the parallel and the forced-sequential driver.
#[test]
fn nm_gemm_respects_strided_c_views_bitwise_on_both_paths() {
    let (rows, width, b, d) = (13, 3 * NR, NR, 24);
    let act = randn_vec(rows * d, 1.0, 71);
    let w = randn_vec(b * d, 1.0, 72);
    let (vals, masks) = lx_quant::nm::encode(&w, b, d, 2, 4);
    let mut dec = vec![0.0; b * d];
    lx_quant::nm::decode(&vals, &masks, b, d, 2, 4, &mut dec);
    for be in [&REFERENCE as &dyn KernelBackend, &PACKED] {
        for block in 0..width / b {
            let mut want = vec![1.0f32; rows * width];
            be.gemm_nt(
                rows,
                d,
                b,
                &act,
                d,
                &dec,
                d,
                &mut want[block * b..],
                width,
                0.0,
            );
            let view = lx_kernels::NmView::new(&vals, &masks, b, d, 2, 4);
            let mut got_seq = vec![1.0f32; rows * width];
            lx_kernels::with_sequential(|| {
                be.gemm_nt_nm(
                    rows,
                    d,
                    b,
                    &act,
                    d,
                    view,
                    d,
                    &mut got_seq[block * b..],
                    width,
                    0.0,
                );
            });
            assert_bits(
                &format!("{} nm strided seq block {block}", be.name()),
                &got_seq,
                &want,
            );
            let mut got_par = vec![1.0f32; rows * width];
            be.gemm_nt_nm(
                rows,
                d,
                b,
                &act,
                d,
                view,
                d,
                &mut got_par[block * b..],
                width,
                0.0,
            );
            assert_bits(
                &format!("{} nm strided par block {block}", be.name()),
                &got_par,
                &want,
            );
        }
    }
}

/// The parallel N:M macro-kernel must be bit-identical to the sequential
/// driver, same as the f32 path: workers own disjoint row panels of C and
/// per-panel summation order is unchanged. The grid includes shapes small
/// enough to stay on one worker and big enough to actually split.
#[test]
fn parallel_nm_is_bit_identical_to_sequential() {
    let m_sizes = [1usize, MR, 40, 97];
    let k_sizes = [7usize, 40, 96];
    let n_sizes = [NR - 1, 40, 97];
    let mut seed = 700_000u64;
    for &m in &m_sizes {
        for &k in &k_sizes {
            for &n in &n_sizes {
                seed += 1;
                let a = randn_vec(m * k, 1.0, seed);
                let b = randn_vec(n * k, 1.0, seed + 1000);
                let (vals, masks) = lx_quant::nm::encode(&b, n, k, 2, 4);
                let view = lx_kernels::NmView::new(&vals, &masks, n, k, 2, 4);
                let mut c_seq = vec![0.25f32; m * n];
                lx_kernels::with_sequential(|| {
                    PACKED.gemm_nt_nm(m, k, n, &a, k, view, k, &mut c_seq, n, 0.5);
                });
                let mut c_par = vec![0.25f32; m * n];
                PACKED.gemm_nt_nm(m, k, n, &a, k, view, k, &mut c_par, n, 0.5);
                assert_bits(&format!("nm par vs seq {m}x{k}x{n}"), &c_par, &c_seq);
            }
        }
    }
}

/// Fused epilogue on a strided C window (one block column of a wide slab,
/// the layout the sparse FC1 writes): the epilogue must touch only the
/// window and index the bias by the GEMM's own columns, not the slab's.
#[test]
fn fused_epilogue_respects_strided_c_views() {
    let (rows, width, b, d) = (13, 3 * NR, NR, 24);
    let act = randn_vec(rows * d, 1.0, 61);
    let wt = randn_vec(b * d, 1.0, 62);
    let bias = randn_vec(b, 1.0, 63);
    for be in [&REFERENCE as &dyn KernelBackend, &PACKED] {
        for block in 0..width / b {
            let mut want = vec![1.0f32; rows * width];
            be.gemm_nt(
                rows,
                d,
                b,
                &act,
                d,
                &wt,
                d,
                &mut want[block * b..],
                width,
                0.0,
            );
            for r in 0..rows {
                for j in 0..b {
                    let v = &mut want[r * width + block * b + j];
                    *v = lx_kernels::gelu(*v + bias[j]);
                }
            }
            let mut got = vec![1.0f32; rows * width];
            be.gemm_nt_ep(
                rows,
                d,
                b,
                &act,
                d,
                &wt,
                d,
                &mut got[block * b..],
                width,
                0.0,
                Epilogue::BiasGelu(&bias),
            );
            assert_bits(
                &format!("{} strided ep block {block}", be.name()),
                &got,
                &want,
            );
        }
    }
}

/// The parallel macro-kernel must be bit-identical to the single-threaded
/// driver: workers own disjoint row panels of C and each panel's summation
/// order is unchanged, so this is exact equality, not a tolerance. The grid
/// includes shapes smaller than one worker panel (a single register tile of
/// rows) and a shape big enough to actually split.
#[test]
fn parallel_packed_is_bit_identical_to_sequential() {
    let mut m_sizes = interesting_sizes();
    m_sizes.push(97); // several MR panels: splits across workers when pooled
    let k_sizes = [1usize, 7, NR, 40];
    let n_sizes = [1usize, NR - 1, 40, 97];
    let mut seed = 400_000u64;
    for &m in &m_sizes {
        for &k in &k_sizes {
            for &n in &n_sizes {
                seed += 1;
                let a = randn_vec(m * k, 1.0, seed);
                let b = randn_vec(k * n, 1.0, seed + 1000);
                let bias = randn_vec(n, 1.0, seed + 2000);
                for ep in [Epilogue::None, Epilogue::BiasGelu(&bias)] {
                    let mut c_seq = vec![0.25f32; m * n];
                    lx_kernels::with_sequential(|| {
                        PACKED.gemm_ep(m, k, n, &a, k, &b, n, &mut c_seq, n, 0.5, ep);
                    });
                    let mut c_par = vec![0.25f32; m * n];
                    PACKED.gemm_ep(m, k, n, &a, k, &b, n, &mut c_par, n, 0.5, ep);
                    assert_bits(&format!("par vs seq {m}x{k}x{n} {ep:?}"), &c_par, &c_seq);
                }
            }
        }
    }
}

/// Regression: a GEMM issued from inside every pool worker simultaneously
/// (the sparse FC1 does exactly this) must fall back to the sequential
/// driver instead of re-entering the pool — no deadlock, no oversubscribed
/// nested parallelism, and the same bits as the top-level sequential run.
#[test]
fn gemm_inside_every_worker_takes_the_sequential_path() {
    let tasks = (lx_parallel::pool().threads() * 2).max(4);
    let (m, k, n) = (MR + 3, 33, NR + 5);
    // grain 1 → one chunk per task index, so every worker gets GEMM work.
    let results = lx_parallel::parallel_map(0..tasks, 1, |chunk| {
        chunk
            .map(|i| {
                let seed = 500_000 + i as u64;
                let a = randn_vec(m * k, 1.0, seed);
                let b = randn_vec(k * n, 1.0, seed + 1);
                let mut c = vec![0.0f32; m * n];
                PACKED.gemm(m, k, n, &a, k, &b, n, &mut c, n, 0.0);
                c
            })
            .collect::<Vec<_>>()
    });
    for (i, got) in results.into_iter().flatten().enumerate() {
        let seed = 500_000 + i as u64;
        let a = randn_vec(m * k, 1.0, seed);
        let b = randn_vec(k * n, 1.0, seed + 1);
        let mut want = vec![0.0f32; m * n];
        lx_kernels::with_sequential(|| {
            PACKED.gemm(m, k, n, &a, k, &b, n, &mut want, n, 0.0);
        });
        assert_bits(&format!("worker gemm {i}"), &got, &want);
    }
}

/// Force the packed backend under the block-sparse attention ops by running
/// the per-block shapes they issue through both backends directly.
#[test]
fn attention_block_shapes_match() {
    for (b, dh) in [(4usize, 8usize), (16, 32), (32, 64), (32, 80)] {
        let q = randn_vec(b * dh, 1.0, 21);
        let k = randn_vec(b * dh, 1.0, 22);
        let mut s_ref = vec![0.0; b * b];
        let mut s_packed = vec![0.0; b * b];
        REFERENCE.gemm_nt(b, dh, b, &q, dh, &k, dh, &mut s_ref, b, 0.0);
        PACKED.gemm_nt(b, dh, b, &q, dh, &k, dh, &mut s_packed, b, 0.0);
        assert_close(&format!("scores block b={b} dh={dh}"), &s_packed, &s_ref);

        let p = randn_vec(b * b, 1.0, 23);
        let v = randn_vec(b * dh, 1.0, 24);
        let mut o_ref = vec![0.0; b * dh];
        let mut o_packed = vec![0.0; b * dh];
        REFERENCE.gemm(b, b, dh, &p, b, &v, dh, &mut o_ref, dh, 1.0);
        PACKED.gemm(b, b, dh, &p, b, &v, dh, &mut o_packed, dh, 1.0);
        assert_close(&format!("context block b={b}"), &o_packed, &o_ref);

        let mut t_ref = vec![0.0; b * dh];
        let mut t_packed = vec![0.0; b * dh];
        REFERENCE.gemm_tn(b, b, dh, &p, b, &v, dh, &mut t_ref, dh, 1.0);
        PACKED.gemm_tn(b, b, dh, &p, b, &v, dh, &mut t_packed, dh, 1.0);
        assert_close(&format!("transposed block b={b}"), &t_packed, &t_ref);
    }
}

/// End-to-end sparse attention against a dense matmul oracle, whatever
/// backend the dispatcher picks — the routed pipeline must stay exact.
#[test]
fn sparse_attention_pipeline_matches_dense_oracle() {
    let (b, s, dh) = (8usize, 64usize, 16usize);
    let lay = BlockCsr::from_mask(&PatternSpec::LocalGlobal { w: 2, g: 1 }.mask(s / b), b);
    let q = randn_vec(s * dh, 1.0, 31);
    let k = randn_vec(s * dh, 1.0, 32);
    let mut blocks = vec![0.0; lay.data_len()];
    sdd_nt(&q, &k, s, dh, 0.25, &lay, CausalFill::None, &mut blocks);
    let dense_scores = block_data_to_dense(&blocks, &lay);
    for i in 0..s {
        for j in 0..s {
            if !lay.to_mask().get(i / b, j / b) {
                continue;
            }
            let expect: f32 = 0.25
                * q[i * dh..(i + 1) * dh]
                    .iter()
                    .zip(&k[j * dh..(j + 1) * dh])
                    .map(|(x, y)| x * y)
                    .sum::<f32>();
            let got = dense_scores[i * s + j];
            assert!(
                (got - expect).abs() <= TOL * (1.0 + expect.abs()),
                "scores ({i},{j}): {got} vs {expect}"
            );
        }
    }
    // DSD and its transpose agree with the dense expansion.
    let x = randn_vec(s * dh, 1.0, 33);
    let mut out = vec![0.0; s * dh];
    dsd(&blocks, &x, s, dh, &lay, &mut out);
    let mut expect = vec![0.0; s * dh];
    for i in 0..s {
        for j in 0..s {
            let pv = dense_scores[i * s + j];
            for t in 0..dh {
                expect[i * dh + t] += pv * x[j * dh + t];
            }
        }
    }
    assert_close("dsd", &out, &expect);
    let mut out_t = vec![0.0; s * dh];
    dsd_tn(&blocks, &x, s, dh, &lay, &mut out_t);
    let mut expect_t = vec![0.0; s * dh];
    for i in 0..s {
        for j in 0..s {
            let pv = dense_scores[i * s + j];
            for t in 0..dh {
                expect_t[j * dh + t] += pv * x[i * dh + t];
            }
        }
    }
    assert_close("dsd_tn", &out_t, &expect_t);
}

/// The neuron-sparse MLP forward path against an explicit gather/scatter
/// oracle at a width that exercises multi-panel packing.
#[test]
fn neuron_mlp_matches_oracle_at_packing_widths() {
    let (rows, d_in, h, block) = (33, 48, 8 * NR, NR);
    let set = NeuronBlockSet::from_indices(vec![0, 2, 3, 7], h / block, block);
    let width = set.active_neurons();
    let x = randn_vec(rows * d_in, 1.0, 41);
    let w1 = randn_vec(d_in * h, 0.2, 42);
    let cm = ColMajorWeights::from_row_major(&w1, d_in, h);
    let mut z = vec![0.0; rows * width];
    fc1_forward(&x, rows, cm.raw(), d_in, None, &set, &mut z);
    for r in 0..rows {
        for (ai, &blk) in set.active.iter().enumerate() {
            for t in 0..block {
                let neuron = blk as usize * block + t;
                let expect: f32 = (0..d_in)
                    .map(|i| x[r * d_in + i] * w1[i * h + neuron])
                    .sum();
                let got = z[r * width + ai * block + t];
                assert!(
                    (got - expect).abs() <= TOL * (1.0 + expect.abs()),
                    "fc1 r={r} neuron={neuron}: {got} vs {expect}"
                );
            }
        }
    }
    let d_out = 29;
    let w2 = randn_vec(h * d_out, 0.2, 43);
    let mut y = vec![0.0; rows * d_out];
    fc2_forward(&z, rows, &w2, d_out, None, &set, &mut y);
    let mut expect = vec![0.0; rows * d_out];
    for r in 0..rows {
        for (ai, &blk) in set.active.iter().enumerate() {
            for t in 0..block {
                let neuron = blk as usize * block + t;
                let av = z[r * width + ai * block + t];
                for c in 0..d_out {
                    expect[r * d_out + c] += av * w2[neuron * d_out + c];
                }
            }
        }
    }
    assert_close("fc2", &y, &expect);
}
