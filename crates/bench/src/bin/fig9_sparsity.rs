//! **Figure 9**: per-layer sparsity ratios and corresponding kernel
//! performance for attention and MLP.
//!
//! Left (ratios): 'Shadowy' (uniform union mask / raw activation union) vs
//! Longformer vs BigBird vs Long Exposure head-specific masks; MLP threshold
//! sweep. Right (performance): per-layer execution time — dense vs the
//! unstructured shadowy arm vs Long Exposure block/neuron kernels.
//!
//! Paper: LX ≈1.78× over dense and ≈1.33× over shadowy in attention;
//! ≈4.22× over dense in MLP — with shadowy *slower* than dense.

use long_exposure::engine::EngineConfig;
use long_exposure::exposer::Exposer;
use long_exposure::FinetuneEngine;
use lx_bench::{header, row, sim_model, SIM_BLOCK};
use lx_data::e2e::E2eGenerator;
use lx_data::{Batcher, SyntheticWorld};
use lx_model::{CaptureConfig, ModelConfig};
use lx_sparse::attention::{block_row_softmax, dsd, sdd_nt, CausalFill};
use lx_sparse::neuron::{fc1_forward, fc2_forward};
use lx_sparse::scattered::{spmm, ElemCsr};
use lx_sparse::{BlockCsr, NeuronBlockSet, PatternPool};
use lx_tensor::gemm::{gemm, gemm_nt};
use lx_tensor::ops::{apply_causal_mask, softmax_rows};
use lx_tensor::rng::randn_vec;
use std::time::Instant;

fn time_it(f: impl FnMut()) -> f64 {
    let mut f = f;
    f(); // warm-up
    let t0 = Instant::now();
    let reps = 5;
    for _ in 0..reps {
        f();
    }
    t0.elapsed().as_secs_f64() / reps as f64
}

fn main() {
    let cli = lx_bench::BenchCli::parse("fig9_sparsity");
    lx_runtime::kernel_policy::install_tuned();
    let (batch, seq, block) = (2, 256, SIM_BLOCK);
    let cfg = ModelConfig::opt_sim_base();
    let mut model = sim_model(cfg.clone(), 42);
    let world = SyntheticWorld::new(cfg.vocab_size as u32, 3);
    let mut batcher = Batcher::new(E2eGenerator::new(world).stream(100_000, 0));
    let ids = batcher.next_batch(batch, seq);

    // ---- Left: sparsity ratios per layer ----
    println!(
        "== Fig. 9 (left): per-layer sparsity ratios ({}, seq {seq}) ==\n",
        cfg.name
    );
    // The paper sweeps 1-5% of peak on OPT checkpoints; the sim models'
    // compressed dynamic range maps that sweep to ~0.2-0.5 (EXPERIMENTS.md).
    let thresholds = [0.2f32, 0.3, 0.4, 0.5];
    let mut engine = FinetuneEngine::new(
        sim_model(cfg.clone(), 42),
        EngineConfig {
            block_size: block,
            attn_prob_threshold: 8.0 / seq as f32,
            ..EngineConfig::default()
        },
    );
    let reports = engine.sparsity_report(&ids, batch, seq, &thresholds);
    header(&[
        "layer",
        "shadowy",
        "longformer",
        "bigbird",
        "long-exposure (attn)",
    ]);
    for r in &reports {
        row(&[
            r.layer.to_string(),
            format!("{:.2}", r.shadowy_attn),
            format!("{:.2}", r.longformer_attn),
            format!("{:.2}", r.bigbird_attn),
            format!("{:.2}", r.longexposure_attn),
        ]);
    }
    println!();
    let th_cols: Vec<String> = thresholds.iter().map(|t| format!("θ={t:.1}")).collect();
    let mut cols = vec!["layer", "shadowy (MLP)"];
    cols.extend(th_cols.iter().map(|s| s.as_str()));
    header(&cols);
    for r in &reports {
        let mut cells = vec![r.layer.to_string(), format!("{:.2}", r.shadowy_mlp)];
        cells.extend(r.lx_mlp.iter().map(|(_, s)| format!("{s:.2}")));
        row(&cells);
    }

    // ---- Right: per-layer kernel performance ----
    println!("\n== Fig. 9 (right): per-layer kernel time, dense vs shadowy vs Long Exposure ==\n");
    let caps = model
        .execute(lx_model::StepRequest::capture(
            &ids,
            batch,
            seq,
            CaptureConfig {
                attn: true,
                mlp: true,
            },
        ))
        .captures
        .expect("capture mode records captures");
    let exposer = Exposer::new(block, 8.0 / seq as f32, 0.3);
    let pool = PatternPool::default_pool(block, &[seq / block]);
    let dh = cfg.head_dim();
    let rows_n = batch * seq;

    header(&[
        "layer",
        "attn dense ms",
        "attn shadowy ms",
        "attn LX ms",
        "LX speedup",
        "mlp dense ms",
        "mlp shadowy ms",
        "mlp LX ms",
        "LX speedup",
    ]);
    for (l, cap) in caps.iter().enumerate() {
        // Attention arms (single representative head workload × n_heads).
        let q = randn_vec(seq * dh, 1.0, l as u64);
        let k = randn_vec(seq * dh, 1.0, l as u64 + 1);
        let v = randn_vec(seq * dh, 1.0, l as u64 + 2);
        let probs = cap.attn_probs.as_ref().unwrap();
        let masks = exposer.attention_head_masks(probs, batch, cfg.n_heads, seq);
        let union = Exposer::attention_union_mask(&masks);
        let union_layout = BlockCsr::from_mask(&union, block);
        let lx_layouts: Vec<_> = masks
            .iter()
            .map(|m| pool.layout(pool.best_match(m, 0.95).0, seq / block))
            .collect();
        let scale = 1.0 / (dh as f32).sqrt();
        let t_attn_dense = time_it(|| {
            let mut s = vec![0.0f32; seq * seq];
            gemm_nt(seq, dh, seq, &q, &k, &mut s, 0.0);
            apply_causal_mask(&mut s, seq);
            softmax_rows(&mut s, seq);
            let mut o = vec![0.0f32; seq * dh];
            gemm(seq, seq, dh, &s, &v, &mut o, 0.0);
        }) * cfg.n_heads as f64;
        let sparse_head = |layout: &BlockCsr| {
            let mut p = vec![0.0f32; layout.data_len()];
            sdd_nt(&q, &k, seq, dh, scale, layout, CausalFill::NegInf, &mut p);
            block_row_softmax(&mut p, layout);
            let mut o = vec![0.0f32; seq * dh];
            dsd(&p, &v, seq, dh, layout, &mut o);
        };
        let t_attn_shadowy = time_it(|| {
            // Uniform union mask applied to every head.
            for _ in 0..cfg.n_heads {
                sparse_head(&union_layout);
            }
        });
        let t_attn_lx = time_it(|| {
            for layout in &lx_layouts {
                sparse_head(layout);
            }
        });

        // MLP arms.
        let x = randn_vec(rows_n * cfg.d_model, 1.0, 90 + l as u64);
        let w1t = randn_vec(cfg.d_ff * cfg.d_model, 0.05, 91 + l as u64);
        let w2 = randn_vec(cfg.d_ff * cfg.d_model, 0.05, 92 + l as u64);
        let acts = cap.mlp_activations.as_ref().unwrap();
        let set = exposer.mlp_filter(&exposer.mlp_block_importance(acts));
        let dense_set = NeuronBlockSet::all(cfg.d_ff / block, block);
        let t_mlp_dense = time_it(|| {
            let mut z = vec![0.0f32; rows_n * cfg.d_ff];
            fc1_forward(&x, rows_n, &w1t, cfg.d_model, None, &dense_set, &mut z);
            for zv in z.iter_mut() {
                if *zv < 0.0 {
                    *zv = 0.0;
                }
            }
            let mut y = vec![0.0f32; rows_n * cfg.d_model];
            fc2_forward(&z, rows_n, &w2, cfg.d_model, None, &dense_set, &mut y);
        });
        let t_mlp_shadowy = time_it(|| {
            // Dense FC1, then element-CSR built *at runtime* for FC2 —
            // the unstructured arm pays the conversion inside the loop.
            let mut z = vec![0.0f32; rows_n * cfg.d_ff];
            fc1_forward(&x, rows_n, &w1t, cfg.d_model, None, &dense_set, &mut z);
            for zv in z.iter_mut() {
                if *zv < 0.0 {
                    *zv = 0.0;
                }
            }
            let csr = ElemCsr::from_dense(&z, rows_n, cfg.d_ff, 0.0);
            let mut y = vec![0.0f32; rows_n * cfg.d_model];
            spmm(&csr, &w2, cfg.d_model, None, &mut y);
        });
        let t_mlp_lx = time_it(|| {
            let width = set.active_neurons();
            let mut z = vec![0.0f32; rows_n * width];
            fc1_forward(&x, rows_n, &w1t, cfg.d_model, None, &set, &mut z);
            for zv in z.iter_mut() {
                if *zv < 0.0 {
                    *zv = 0.0;
                }
            }
            let mut y = vec![0.0f32; rows_n * cfg.d_model];
            fc2_forward(&z, rows_n, &w2, cfg.d_model, None, &set, &mut y);
        });
        row(&[
            l.to_string(),
            format!("{:.2}", t_attn_dense * 1e3),
            format!("{:.2}", t_attn_shadowy * 1e3),
            format!("{:.2}", t_attn_lx * 1e3),
            format!("{:.2}x", t_attn_dense / t_attn_lx),
            format!("{:.2}", t_mlp_dense * 1e3),
            format!("{:.2}", t_mlp_shadowy * 1e3),
            format!("{:.2}", t_mlp_lx * 1e3),
            format!("{:.2}x", t_mlp_dense / t_mlp_lx),
        ]);
    }
    println!("\npaper reference: attention LX 1.78x vs dense, 1.33x vs shadowy; MLP LX 4.22x vs dense, shadowy slower than dense.");
    cli.finish();
}
