//! Safe disjoint-region parallel splitting.
//!
//! Every CPU kernel in this workspace parallelises the same way: tasks write
//! disjoint regions of one output buffer. Before this module each kernel
//! carried its own `SendPtr(*mut f32)` wrapper plus per-task
//! `from_raw_parts_mut` — a dozen copies of the same unsafety. The two
//! helpers here replace all of them with *safe* code: chunks are carved off
//! the output with `split_at_mut` on the submitting thread, so each task owns
//! a real `&mut [T]` and the borrow checker (plus `run_scoped`'s completion
//! guarantee) does the rest. The only remaining audited `unsafe` on this path
//! is the lifetime erasure inside [`ThreadPool::run_scoped`].
//!
//! * [`par_rows`] — uniform stride: `data` is `rows` rows of `row_stride`
//!   elements (the last row may be shorter when the buffer is a strided
//!   window). Tasks get contiguous row *ranges*.
//! * [`par_disjoint`] — explicit spans: sorted, non-overlapping
//!   `Range<usize>` spans of `data` (CSR block-rows, scattered weight
//!   columns). Tasks get contiguous runs of spans and the one slice covering
//!   them.

use crate::pool::{pool, split_range, ThreadPool};
use std::ops::Range;

impl ThreadPool {
    /// Parallel loop over the rows of `data` (row length `row_stride`),
    /// handing each task a contiguous row range and the sub-slice covering
    /// exactly those rows. `grain` is the minimum number of rows per task;
    /// smaller inputs run inline on the calling thread.
    ///
    /// `data` must hold at least `(rows-1)·row_stride + 1` and at most
    /// `rows·row_stride` elements, so strided windows whose final row is
    /// shorter than the stride are accepted.
    pub fn par_rows<T, F>(
        &self,
        data: &mut [T],
        rows: usize,
        row_stride: usize,
        grain: usize,
        body: F,
    ) where
        T: Send,
        F: Fn(Range<usize>, &mut [T]) + Sync,
    {
        if rows == 0 {
            return;
        }
        assert!(row_stride > 0, "par_rows: zero row stride");
        assert!(
            data.len() > (rows - 1) * row_stride && data.len() <= rows * row_stride,
            "par_rows: {} elements cannot be {rows} rows of stride {row_stride}",
            data.len()
        );
        let grain = grain.max(1);
        if rows <= grain {
            body(0..rows, data);
            return;
        }
        let chunks = split_range(0..rows, grain, self.threads());
        let body_ref = &body;
        let mut rest = data;
        let mut carved = 0usize;
        let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(chunks.len());
        let n_chunks = chunks.len();
        for (ci, chunk) in chunks.into_iter().enumerate() {
            let end = if ci + 1 == n_chunks {
                carved + rest.len()
            } else {
                chunk.end * row_stride
            };
            let (head, tail) = std::mem::take(&mut rest).split_at_mut(end - carved);
            carved = end;
            rest = tail;
            tasks.push(Box::new(move || body_ref(chunk, head)));
        }
        self.run_scoped(tasks);
    }

    /// Parallel loop over sorted, pairwise-disjoint `spans` of `data`.
    ///
    /// Each task receives a contiguous run of span indices and the single
    /// sub-slice covering `spans[run.start].start .. spans[run.end-1].end`;
    /// positions of individual spans inside it are recovered by subtracting
    /// `spans[run.start].start`. `grain` is the minimum number of spans per
    /// task. Gaps between spans belong to the covering task's slice but are
    /// expected to be left untouched.
    pub fn par_disjoint<T, F>(&self, data: &mut [T], spans: &[Range<usize>], grain: usize, body: F)
    where
        T: Send,
        F: Fn(Range<usize>, &mut [T]) + Sync,
    {
        let n = spans.len();
        if n == 0 {
            return;
        }
        for (i, s) in spans.iter().enumerate() {
            assert!(s.start <= s.end, "par_disjoint: span {i} is inverted");
            assert!(s.end <= data.len(), "par_disjoint: span {i} out of bounds");
            if i > 0 {
                assert!(
                    spans[i - 1].end <= s.start,
                    "par_disjoint: spans {} and {i} overlap or are unsorted",
                    i - 1
                );
            }
        }
        let grain = grain.max(1);
        if n <= grain {
            let base = spans[0].start;
            let end = spans[n - 1].end;
            body(0..n, &mut data[base..end]);
            return;
        }
        let chunks = split_range(0..n, grain, self.threads());
        let body_ref = &body;
        let mut rest = data;
        let mut carved = 0usize;
        let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(chunks.len());
        for chunk in chunks {
            let base = spans[chunk.start].start;
            let end = spans[chunk.end - 1].end;
            let (_, at_base) = std::mem::take(&mut rest).split_at_mut(base - carved);
            let (head, tail) = at_base.split_at_mut(end - base);
            carved = end;
            rest = tail;
            tasks.push(Box::new(move || body_ref(chunk, head)));
        }
        self.run_scoped(tasks);
    }
}

/// [`ThreadPool::par_rows`] on the global pool.
pub fn par_rows<T, F>(data: &mut [T], rows: usize, row_stride: usize, grain: usize, body: F)
where
    T: Send,
    F: Fn(Range<usize>, &mut [T]) + Sync,
{
    pool().par_rows(data, rows, row_stride, grain, body)
}

/// [`ThreadPool::par_disjoint`] on the global pool.
pub fn par_disjoint<T, F>(data: &mut [T], spans: &[Range<usize>], grain: usize, body: F)
where
    T: Send,
    F: Fn(Range<usize>, &mut [T]) + Sync,
{
    pool().par_disjoint(data, spans, grain, body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_rows_writes_every_row_once() {
        let (rows, stride) = (97, 13);
        let mut data = vec![0u32; rows * stride];
        par_rows(&mut data, rows, stride, 4, |rng, chunk| {
            for (local, r) in rng.clone().enumerate() {
                for v in &mut chunk[local * stride..(local + 1) * stride] {
                    *v += r as u32 + 1;
                }
            }
        });
        for r in 0..rows {
            for c in 0..stride {
                assert_eq!(data[r * stride + c], r as u32 + 1, "row {r} col {c}");
            }
        }
    }

    #[test]
    fn par_rows_accepts_short_last_row() {
        // A strided window: 4 rows of stride 10 but only 3 valid tail cols.
        let mut data = vec![0u8; 3 * 10 + 3];
        par_rows(&mut data, 4, 10, 1, |rng, chunk| {
            for (local, _) in rng.enumerate() {
                let end = ((local + 1) * 10).min(chunk.len());
                for v in &mut chunk[local * 10..end] {
                    *v += 1;
                }
            }
        });
        assert!(data.iter().all(|&v| v == 1));
    }

    #[test]
    fn par_rows_small_runs_inline() {
        let mut data = vec![0u8; 8];
        par_rows(&mut data, 2, 4, 16, |rng, chunk| {
            assert_eq!(rng, 0..2);
            assert_eq!(chunk.len(), 8);
            chunk.fill(7);
        });
        assert!(data.iter().all(|&v| v == 7));
    }

    #[test]
    fn par_rows_empty_is_noop() {
        let mut data: Vec<u8> = vec![];
        par_rows(&mut data, 0, 4, 1, |_, _| panic!("must not run"));
    }

    #[test]
    fn par_disjoint_covers_spans_with_gaps() {
        // Spans with holes: every span gets its index written, holes stay 0.
        let spans: Vec<Range<usize>> = (0..50).map(|i| i * 7..i * 7 + 3).collect();
        let mut data = vec![0u32; 50 * 7];
        par_disjoint(&mut data, &spans, 3, |rng, chunk| {
            let base = rng.start * 7;
            for i in rng {
                let s = i * 7 - base;
                for v in &mut chunk[s..s + 3] {
                    *v = i as u32 + 1;
                }
            }
        });
        for (i, span) in spans.iter().enumerate() {
            for j in span.clone() {
                assert_eq!(data[j], i as u32 + 1);
            }
        }
        let written: usize = data.iter().filter(|&&v| v != 0).count();
        assert_eq!(written, 150, "gaps must stay untouched");
    }

    #[test]
    fn par_disjoint_handles_empty_spans() {
        let spans = vec![0..0, 0..4, 4..4, 4..8];
        let mut data = vec![0u8; 8];
        par_disjoint(&mut data, &spans, 1, |rng, chunk| {
            let base = spans[rng.start].start;
            for i in rng {
                let s = spans[i].start - base..spans[i].end - base;
                for v in &mut chunk[s] {
                    *v += 1;
                }
            }
        });
        assert!(data.iter().all(|&v| v == 1));
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn par_disjoint_rejects_overlap() {
        let mut data = vec![0u8; 10];
        par_disjoint(&mut data, &[0..5, 4..8], 1, |_, _| {});
    }
}
