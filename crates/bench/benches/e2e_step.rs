//! Criterion end-to-end training-step benchmark (the Fig. 7 shape at
//! micro-benchmark rigor): one LoRA fine-tuning step, dense vs Long
//! Exposure, on the small sim model.

use criterion::{criterion_group, criterion_main, Criterion};
use long_exposure::engine::StepMode;
use lx_bench::{calibrated_engine, default_opt};
use lx_model::{prompt_aware_targets, ModelConfig};
use lx_peft::PeftMethod;
use std::hint::black_box;

fn bench_e2e(c: &mut Criterion) {
    let (batch, seq) = (1, 128);
    let (mut engine, mut batcher) = calibrated_engine(
        ModelConfig::opt_sim_small(),
        PeftMethod::lora_default(),
        batch,
        seq,
        42,
    );
    let mut opt = default_opt();
    let mut group = c.benchmark_group("e2e_train_step");
    for (name, mode) in [
        ("dense", StepMode::Dense),
        ("long_exposure", StepMode::Sparse),
    ] {
        group.bench_function(name, |bch| {
            bch.iter(|| {
                let ids = batcher.next_batch(batch, seq);
                let targets = prompt_aware_targets(&ids, batch, seq, 0);
                black_box(engine.train_step_mode(&ids, &targets, batch, seq, &mut opt, mode))
            })
        });
    }
    group.finish();
}

fn criterion_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3))
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench_e2e
}
criterion_main!(benches);
