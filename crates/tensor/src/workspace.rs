//! Step-persistent tensor workspaces: size-bucketed `Vec<f32>` reuse.
//!
//! The paper's training loop allocates the same set of intermediate tensors
//! every step — projections, score buffers, compact activations, gradients of
//! all of the above. A [`Workspace`] turns that churn into reuse: while a
//! workspace [`scope`](Workspace::scope) is active on the current thread,
//! every `Tensor` buffer dropped inside the scope is parked in a
//! capacity-keyed free list instead of returned to the allocator, and every
//! `Tensor::zeros`/`full`/`clone` first tries to take a parked buffer of
//! sufficient capacity. After one or two warmup steps the pool holds every
//! shape the step needs and a steady-state training step performs **zero**
//! heap tensor allocations — assertable through
//! [`alloc_stats`](crate::memtrack::alloc_stats), which recycled buffers do
//! not advance.
//!
//! Reuse is bit-exact: a recycled `zeros` buffer is `fill(0.0)`-ed and a
//! recycled `clone` target is overwritten by `copy_from_slice`, so pooled and
//! fresh execution produce identical results (the differential suite proves
//! this over multi-step training runs).
//!
//! The workspace itself is a plain owned value — `TransformerModel` keeps one
//! per model, `lx-serve` keeps one per tenant and swaps it in with the
//! adapter — so pooled buffers survive across steps, micro-batches and
//! scheduler slices without any global state beyond the per-thread scope
//! marker.

use crate::memtrack;
use lx_obs::{registry, Counter};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

/// Process-wide mirrors of the per-workspace reuse counters, registered in
/// the global [`lx_obs`] metrics registry. Per-workspace [`WorkspaceStats`]
/// stay the source of truth for the differential suite; these aggregate
/// across every workspace on every thread so `step_bench --trace` and the
/// serve exposition endpoint can report pool behaviour without plumbing.
struct PoolCounters {
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    recycled: Arc<Counter>,
}

fn pool_counters() -> &'static PoolCounters {
    static COUNTERS: OnceLock<PoolCounters> = OnceLock::new();
    COUNTERS.get_or_init(|| PoolCounters {
        hits: registry().counter("workspace.hits"),
        misses: registry().counter("workspace.misses"),
        recycled: registry().counter("workspace.recycled"),
    })
}

/// Free buffers keyed by capacity (elements), newest-first per bucket.
#[derive(Debug, Default)]
struct Pool {
    buckets: BTreeMap<usize, Vec<Vec<f32>>>,
    held_elems: usize,
    hits: u64,
    misses: u64,
    recycled: u64,
}

impl Pool {
    /// Smallest parked buffer with capacity ≥ `len`, if it fits within the
    /// over-allocation bound (25% + 64 elements of slack). The bound keeps
    /// `memtrack`'s live-byte accounting honest — a step that borrowed a
    /// grossly oversized buffer would register the full capacity and distort
    /// the peak-memory experiments — while still letting near-miss shapes
    /// share buffers. Steady-state steps request the exact sizes they parked,
    /// so the bound never costs them a hit.
    fn take(&mut self, len: usize) -> Option<Vec<f32>> {
        let cap = *self.buckets.range(len.max(1)..).next()?.0;
        if cap > len + len / 4 + 64 {
            return None;
        }
        let bucket = self.buckets.get_mut(&cap).expect("bucket exists");
        let buf = bucket.pop().expect("non-empty bucket");
        if bucket.is_empty() {
            self.buckets.remove(&cap);
        }
        self.held_elems -= buf.capacity();
        Some(buf)
    }

    fn park(&mut self, buf: Vec<f32>) {
        self.held_elems += buf.capacity();
        self.recycled += 1;
        self.buckets.entry(buf.capacity()).or_default().push(buf);
    }
}

thread_local! {
    /// The pool installed by the innermost active [`Workspace::scope`] on
    /// this thread, if any.
    static ACTIVE: RefCell<Option<Pool>> = const { RefCell::new(None) };
}

/// Counters describing a workspace's reuse behaviour (see [`Workspace::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkspaceStats {
    /// Allocations served from the pool.
    pub hits: u64,
    /// Allocations that fell through to the heap (warmup, odd shapes).
    pub misses: u64,
    /// Buffers returned to the pool by `Tensor` drops inside a scope.
    pub recycled: u64,
    /// Buffers currently parked in the pool.
    pub held_buffers: usize,
    /// Bytes currently parked in the pool.
    pub held_bytes: usize,
}

/// A step-persistent buffer pool. See the [module docs](self).
#[derive(Debug, Default)]
pub struct Workspace {
    pool: Pool,
    disabled: bool,
}

impl Workspace {
    pub fn new() -> Self {
        Workspace::default()
    }

    /// A workspace whose scopes install nothing: every allocation inside is
    /// a fresh heap allocation and every drop frees. The fresh-allocation
    /// arm of the differential suite.
    pub fn disabled() -> Self {
        Workspace {
            pool: Pool::default(),
            disabled: true,
        }
    }

    /// A workspace honouring the global `LX_WORKSPACE` escape hatch:
    /// [`Workspace::disabled`] when `LX_WORKSPACE=0`, [`Workspace::new`]
    /// otherwise. Every owner of a long-lived workspace (models, per-tenant
    /// serve jobs) should construct through this so "disable pooling
    /// globally" means *globally*.
    pub fn from_env() -> Self {
        if std::env::var("LX_WORKSPACE").as_deref() == Ok("0") {
            Workspace::disabled()
        } else {
            Workspace::new()
        }
    }

    /// Whether scopes of this workspace pool buffers.
    pub fn is_enabled(&self) -> bool {
        !self.disabled
    }

    /// Enable or disable pooling (an `LX_WORKSPACE=0`-style escape hatch;
    /// disabling does not drop already-parked buffers — call
    /// [`Self::clear`] for that).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.disabled = !enabled;
    }

    /// Run `f` with this workspace installed as the current thread's buffer
    /// pool. Nested scopes stack: the innermost wins, and the outer pool is
    /// restored afterwards (also on panic).
    pub fn scope<R>(&mut self, f: impl FnOnce() -> R) -> R {
        if self.disabled {
            return f();
        }
        struct Guard<'a> {
            ws: &'a mut Workspace,
            prev: Option<Pool>,
        }
        impl Drop for Guard<'_> {
            fn drop(&mut self) {
                ACTIVE.with(|a| {
                    let mut slot = a.borrow_mut();
                    self.ws.pool = slot.take().expect("workspace scope pool present");
                    *slot = self.prev.take();
                });
            }
        }
        let prev = ACTIVE.with(|a| {
            let mut slot = a.borrow_mut();
            let prev = slot.take();
            *slot = Some(std::mem::take(&mut self.pool));
            prev
        });
        let _guard = Guard { ws: self, prev };
        f()
    }

    /// Reuse counters and current pool occupancy.
    pub fn stats(&self) -> WorkspaceStats {
        WorkspaceStats {
            hits: self.pool.hits,
            misses: self.pool.misses,
            recycled: self.pool.recycled,
            held_buffers: self.pool.buckets.values().map(Vec::len).sum(),
            held_bytes: self.pool.held_elems * 4,
        }
    }

    /// Drop every parked buffer (keeps the counters).
    pub fn clear(&mut self) {
        self.pool.buckets.clear();
        self.pool.held_elems = 0;
    }
}

/// Take a pooled buffer of capacity ≥ `len` from the current scope, if one
/// is active and has a fit. The returned vec has unspecified contents and
/// length `len`. Registers live bytes (reuse — not a fresh allocation).
pub(crate) fn pool_take(len: usize) -> Option<Vec<f32>> {
    ACTIVE.with(|a| {
        let mut slot = a.borrow_mut();
        let pool = slot.as_mut()?;
        match pool.take(len) {
            Some(mut buf) => {
                pool.hits += 1;
                pool_counters().hits.inc();
                // Capacity is preserved; only the logical length changes.
                // resize never reallocates here because capacity ≥ len.
                if buf.len() < len {
                    buf.resize(len, 0.0);
                } else {
                    buf.truncate(len);
                }
                memtrack::register_reuse(buf.capacity() * 4);
                Some(buf)
            }
            None => {
                pool.misses += 1;
                pool_counters().misses.inc();
                None
            }
        }
    })
}

/// Offer a dropped tensor's buffer to the current scope. Returns `true` when
/// parked (the caller must not free it — it already moved), `false` when no
/// scope is active (the caller lets the vec drop normally).
pub(crate) fn pool_recycle(buf: Vec<f32>) -> bool {
    if buf.capacity() == 0 {
        return false;
    }
    ACTIVE.with(|a| {
        let mut slot = a.borrow_mut();
        match slot.as_mut() {
            Some(pool) => {
                pool.park(buf);
                pool_counters().recycled.inc();
                true
            }
            None => false,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memtrack::alloc_stats;
    use crate::Tensor;

    #[test]
    fn steady_state_is_allocation_free() {
        let mut ws = Workspace::new();
        // Warmup: first pass allocates, buffers park on drop.
        ws.scope(|| {
            let a = Tensor::zeros(&[32, 8]);
            let b = a.clone();
            drop((a, b));
        });
        let mark = alloc_stats();
        for _ in 0..4 {
            ws.scope(|| {
                let a = Tensor::zeros(&[32, 8]);
                let b = a.clone();
                drop((a, b));
            });
        }
        let d = alloc_stats().since(&mark);
        assert_eq!(d.count, 0, "steady state must be allocation-free: {d:?}");
        let stats = ws.stats();
        assert_eq!(stats.misses, 2, "only the warmup pass misses");
        assert_eq!(stats.hits, 8);
        assert_eq!(stats.held_buffers, 2);
    }

    #[test]
    fn pooled_zeros_are_actually_zero() {
        let mut ws = Workspace::new();
        ws.scope(|| {
            let mut t = Tensor::zeros(&[64]);
            t.as_mut_slice().fill(7.5); // dirty the buffer, then park it
            drop(t);
            let u = Tensor::zeros(&[64]);
            assert!(u.as_slice().iter().all(|&v| v == 0.0));
        });
    }

    #[test]
    fn pooled_full_and_clone_are_exact() {
        let mut ws = Workspace::new();
        ws.scope(|| {
            drop(Tensor::zeros(&[10]));
            let f = Tensor::full(&[10], 3.25);
            assert!(f.as_slice().iter().all(|&v| v == 3.25));
            drop(f);
            let src = Tensor::randn(&[10], 1.0, 3);
            let c = src.clone();
            assert_eq!(c, src);
        });
    }

    #[test]
    fn smaller_requests_reuse_larger_buffers() {
        let mut ws = Workspace::new();
        ws.scope(|| drop(Tensor::zeros(&[100])));
        let mark = alloc_stats();
        ws.scope(|| drop(Tensor::zeros(&[40])));
        assert_eq!(alloc_stats().since(&mark).count, 0);
    }

    #[test]
    fn disabled_workspace_always_allocates() {
        let mut ws = Workspace::disabled();
        assert!(!ws.is_enabled());
        ws.scope(|| drop(Tensor::zeros(&[16])));
        let mark = alloc_stats();
        ws.scope(|| drop(Tensor::zeros(&[16])));
        assert_eq!(alloc_stats().since(&mark).count, 1);
        assert_eq!(ws.stats().held_buffers, 0);
    }

    #[test]
    fn scopes_nest_and_restore() {
        let mut outer = Workspace::new();
        let mut inner = Workspace::new();
        outer.scope(|| drop(Tensor::zeros(&[8])));
        assert_eq!(outer.stats().held_buffers, 1);
        outer.scope(|| {
            // The inner scope shadows the outer pool...
            inner.scope(|| drop(Tensor::zeros(&[8])));
            // ...and the outer pool is live again here.
            let t = Tensor::zeros(&[8]);
            drop(t);
        });
        assert_eq!(inner.stats().held_buffers, 1);
        assert_eq!(outer.stats().held_buffers, 1);
        assert_eq!(outer.stats().hits, 1);
    }

    #[test]
    fn buffers_outliving_the_scope_free_normally() {
        let mut ws = Workspace::new();
        let escaped = ws.scope(|| Tensor::zeros(&[12]));
        drop(escaped); // no scope active: plain free, nothing parked
        assert_eq!(ws.stats().held_buffers, 0);
    }

    #[test]
    fn clear_empties_the_pool() {
        let mut ws = Workspace::new();
        ws.scope(|| drop(Tensor::zeros(&[8])));
        assert!(ws.stats().held_bytes > 0);
        ws.clear();
        assert_eq!(ws.stats().held_bytes, 0);
        assert_eq!(ws.stats().held_buffers, 0);
    }
}
