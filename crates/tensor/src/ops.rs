//! Elementwise and row-wise numeric kernels shared by the model and the
//! Long Exposure components: activations (ReLU for OPT-style models, GeLU for
//! GPT-2-style), numerically-stable softmax and its backward, layer
//! normalisation, and bias helpers.

use crate::Tensor;

// ---------------------------------------------------------------------------
// Activations
// ---------------------------------------------------------------------------

/// In-place ReLU.
pub fn relu_inplace(x: &mut [f32]) {
    for v in x {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
}

/// ReLU backward: `dz = da ⊙ [z > 0]`, reading the *pre-activation* `z`.
pub fn relu_backward(da: &[f32], z: &[f32], dz: &mut [f32]) {
    for ((g, &zv), out) in da.iter().zip(z).zip(dz.iter_mut()) {
        *out = if zv > 0.0 { *g } else { 0.0 };
    }
}

// The scalar GELU lives in lx-kernels so the fused GEMM epilogue and this
// unfused pass share one definition and can never drift apart numerically.
pub use lx_kernels::{gelu, GELU_C};

/// Derivative of the tanh-approximation GeLU.
#[inline]
pub fn gelu_grad(x: f32) -> f32 {
    let x3 = x * x * x;
    let inner = GELU_C * (x + 0.044715 * x3);
    let t = inner.tanh();
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * GELU_C * (1.0 + 3.0 * 0.044715 * x * x)
}

/// In-place GeLU.
pub fn gelu_inplace(x: &mut [f32]) {
    for v in x {
        *v = gelu(*v);
    }
}

/// GeLU backward from pre-activations.
pub fn gelu_backward(da: &[f32], z: &[f32], dz: &mut [f32]) {
    for ((g, &zv), out) in da.iter().zip(z).zip(dz.iter_mut()) {
        *out = *g * gelu_grad(zv);
    }
}

// ---------------------------------------------------------------------------
// Softmax
// ---------------------------------------------------------------------------

/// Numerically-stable softmax over each `width`-sized row of `x`.
pub fn softmax_rows(x: &mut [f32], width: usize) {
    assert_eq!(x.len() % width.max(1), 0, "softmax_rows: ragged input");
    if width == 0 {
        return;
    }
    let rows = x.len() / width;
    lx_parallel::par_rows(x, rows, width, (4096 / width).max(1), |rr, chunk| {
        for r in rr.clone() {
            let local = (r - rr.start) * width;
            softmax_row(&mut chunk[local..local + width]);
        }
    });
}

/// Softmax of one row in place.
pub fn softmax_row(row: &mut [f32]) {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if max == f32::NEG_INFINITY {
        // Fully-masked row: define softmax as all zeros (no probability mass).
        row.fill(0.0);
        return;
    }
    let mut sum = 0.0;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    let inv = 1.0 / sum;
    for v in row.iter_mut() {
        *v *= inv;
    }
}

/// Softmax backward for one row: `dx = y ⊙ (dy − ⟨y, dy⟩)`.
pub fn softmax_backward_row(y: &[f32], dy: &[f32], dx: &mut [f32]) {
    let dot: f32 = y.iter().zip(dy).map(|(a, b)| a * b).sum();
    for ((&yv, &dyv), out) in y.iter().zip(dy).zip(dx.iter_mut()) {
        *out = yv * (dyv - dot);
    }
}

/// Apply a causal mask to an `s×s` score matrix: positions `j > i` get −∞.
pub fn apply_causal_mask(scores: &mut [f32], s: usize) {
    assert_eq!(scores.len(), s * s);
    for i in 0..s {
        for v in scores[i * s + i + 1..(i + 1) * s].iter_mut() {
            *v = f32::NEG_INFINITY;
        }
    }
}

// ---------------------------------------------------------------------------
// LayerNorm
// ---------------------------------------------------------------------------

/// LayerNorm forward over one row. Returns `(mean, rstd)` for the backward.
pub fn layernorm_row(
    x: &[f32],
    gamma: &[f32],
    beta: &[f32],
    eps: f32,
    y: &mut [f32],
) -> (f32, f32) {
    let n = x.len() as f32;
    let mean = x.iter().sum::<f32>() / n;
    let var = x.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
    let rstd = 1.0 / (var + eps).sqrt();
    for i in 0..x.len() {
        y[i] = (x[i] - mean) * rstd * gamma[i] + beta[i];
    }
    (mean, rstd)
}

/// LayerNorm backward over one row.
///
/// Accumulates `dgamma`/`dbeta` (+=) and writes `dx`.
#[allow(clippy::too_many_arguments)]
pub fn layernorm_backward_row(
    x: &[f32],
    dy: &[f32],
    gamma: &[f32],
    mean: f32,
    rstd: f32,
    dx: &mut [f32],
    dgamma: &mut [f32],
    dbeta: &mut [f32],
) {
    let n = x.len();
    let nf = n as f32;
    let mut sum_dyg = 0.0f32;
    let mut sum_dyg_xhat = 0.0f32;
    for i in 0..n {
        let xhat = (x[i] - mean) * rstd;
        let dyg = dy[i] * gamma[i];
        sum_dyg += dyg;
        sum_dyg_xhat += dyg * xhat;
        dgamma[i] += dy[i] * xhat;
        dbeta[i] += dy[i];
    }
    for i in 0..n {
        let xhat = (x[i] - mean) * rstd;
        let dyg = dy[i] * gamma[i];
        dx[i] = rstd * (dyg - sum_dyg / nf - xhat * sum_dyg_xhat / nf);
    }
}

// ---------------------------------------------------------------------------
// Bias helpers
// ---------------------------------------------------------------------------

/// `x[r, :] += bias` for every row.
pub fn add_bias_rows(x: &mut Tensor, bias: &[f32]) {
    let c = x.cols();
    assert_eq!(c, bias.len(), "bias width");
    for r in 0..x.rows() {
        for (v, b) in x.row_mut(r).iter_mut().zip(bias) {
            *v += b;
        }
    }
}

/// Column-sum of `dy` accumulated into `dbias` (+=).
pub fn bias_grad_rows(dy: &Tensor, dbias: &mut [f32]) {
    let c = dy.cols();
    assert_eq!(c, dbias.len(), "bias grad width");
    for r in 0..dy.rows() {
        for (g, d) in dy.row(r).iter().zip(dbias.iter_mut()) {
            *d += g;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_roundtrip() {
        let mut x = vec![-1.0, 0.0, 2.0];
        relu_inplace(&mut x);
        assert_eq!(x, vec![0.0, 0.0, 2.0]);
        let z = vec![-1.0, 0.5, 2.0];
        let da = vec![1.0, 1.0, 1.0];
        let mut dz = vec![0.0; 3];
        relu_backward(&da, &z, &mut dz);
        assert_eq!(dz, vec![0.0, 1.0, 1.0]);
    }

    #[test]
    fn gelu_matches_reference_points() {
        // Reference values from the tanh approximation itself evaluated in f64.
        assert!((gelu(0.0)).abs() < 1e-7);
        assert!((gelu(1.0) - 0.841_192).abs() < 1e-3);
        assert!((gelu(-1.0) + 0.158_808).abs() < 1e-3);
    }

    #[test]
    fn gelu_grad_matches_finite_difference() {
        for &x in &[-2.0f32, -0.5, 0.0, 0.3, 1.7] {
            let h = 1e-3;
            let fd = (gelu(x + h) - gelu(x - h)) / (2.0 * h);
            assert!((gelu_grad(x) - fd).abs() < 1e-3, "x={x}");
        }
    }

    #[test]
    fn softmax_row_sums_to_one_and_is_stable() {
        let mut row = vec![1000.0, 1001.0, 999.0];
        softmax_row(&mut row);
        let sum: f32 = row.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert!(row.iter().all(|v| v.is_finite()));
        assert!(row[1] > row[0] && row[0] > row[2]);
    }

    #[test]
    fn softmax_fully_masked_row_is_zero() {
        let mut row = vec![f32::NEG_INFINITY; 4];
        softmax_row(&mut row);
        assert!(row.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn softmax_backward_matches_finite_difference() {
        let x = vec![0.3f32, -0.7, 1.1, 0.2];
        let dy = vec![0.5f32, -0.2, 0.1, 0.9];
        let mut y = x.clone();
        softmax_row(&mut y);
        let mut dx = vec![0.0; 4];
        softmax_backward_row(&y, &dy, &mut dx);
        for i in 0..4 {
            let h = 1e-3;
            let mut xp = x.clone();
            xp[i] += h;
            softmax_row(&mut xp);
            let mut xm = x.clone();
            xm[i] -= h;
            softmax_row(&mut xm);
            let fd: f32 = xp
                .iter()
                .zip(&xm)
                .zip(&dy)
                .map(|((p, m), g)| (p - m) / (2.0 * h) * g)
                .sum();
            assert!((dx[i] - fd).abs() < 1e-3, "i={i}: {} vs {fd}", dx[i]);
        }
    }

    #[test]
    fn causal_mask_zeroes_upper_triangle_after_softmax() {
        let s = 4;
        let mut scores = vec![0.5f32; s * s];
        apply_causal_mask(&mut scores, s);
        softmax_rows(&mut scores, s);
        for i in 0..s {
            for j in 0..s {
                let v = scores[i * s + j];
                if j > i {
                    assert_eq!(v, 0.0);
                } else {
                    assert!((v - 1.0 / (i + 1) as f32).abs() < 1e-5);
                }
            }
        }
    }

    #[test]
    fn layernorm_normalises() {
        let x = vec![1.0f32, 2.0, 3.0, 4.0];
        let gamma = vec![1.0; 4];
        let beta = vec![0.0; 4];
        let mut y = vec![0.0; 4];
        layernorm_row(&x, &gamma, &beta, 1e-5, &mut y);
        let mean: f32 = y.iter().sum::<f32>() / 4.0;
        let var: f32 = y.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn layernorm_backward_matches_finite_difference() {
        let n = 6;
        let x: Vec<f32> = crate::rng::randn_vec(n, 1.0, 20);
        let gamma: Vec<f32> = crate::rng::uniform_vec(n, 0.5, 1.5, 21);
        let beta: Vec<f32> = crate::rng::randn_vec(n, 0.1, 22);
        let dy: Vec<f32> = crate::rng::randn_vec(n, 1.0, 23);
        let mut y = vec![0.0; n];
        let (mean, rstd) = layernorm_row(&x, &gamma, &beta, 1e-6, &mut y);
        let mut dx = vec![0.0; n];
        let mut dgamma = vec![0.0; n];
        let mut dbeta = vec![0.0; n];
        layernorm_backward_row(
            &x,
            &dy,
            &gamma,
            mean,
            rstd,
            &mut dx,
            &mut dgamma,
            &mut dbeta,
        );
        let loss = |xv: &[f32]| -> f32 {
            let mut yy = vec![0.0; n];
            layernorm_row(xv, &gamma, &beta, 1e-6, &mut yy);
            yy.iter().zip(&dy).map(|(a, b)| a * b).sum()
        };
        for i in 0..n {
            let h = 1e-3;
            let mut xp = x.clone();
            xp[i] += h;
            let mut xm = x.clone();
            xm[i] -= h;
            let fd = (loss(&xp) - loss(&xm)) / (2.0 * h);
            assert!((dx[i] - fd).abs() < 2e-3, "i={i}: {} vs {fd}", dx[i]);
        }
        // dbeta is just dy; dgamma is dy * xhat.
        for i in 0..n {
            assert!((dbeta[i] - dy[i]).abs() < 1e-6);
            let xhat = (x[i] - mean) * rstd;
            assert!((dgamma[i] - dy[i] * xhat).abs() < 1e-5);
        }
    }

    #[test]
    fn bias_add_and_grad() {
        let mut x = Tensor::zeros(&[3, 2]);
        add_bias_rows(&mut x, &[1.0, 2.0]);
        assert_eq!(x.row(2), &[1.0, 2.0]);
        let mut db = vec![0.0; 2];
        bias_grad_rows(&x, &mut db);
        assert_eq!(db, vec![3.0, 6.0]);
    }
}
