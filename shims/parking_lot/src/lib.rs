//! Offline stand-in for the subset of `parking_lot` this workspace uses:
//! `Mutex` (no poisoning, guard from `&self`) and `Condvar` whose wait
//! methods take `&mut MutexGuard`. Backed by `std::sync`; lock poisoning is
//! deliberately swallowed (parking_lot has no poisoning), which matches how
//! the thread pool already routes panics through its own latch + flag.

use std::sync::{self, PoisonError};
use std::time::Duration;

pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can move the std guard out and back.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

pub struct Condvar {
    inner: sync::Condvar,
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }

    /// Returns `true` if the wait timed out (parking_lot's
    /// `WaitTimeoutResult::timed_out()` shape, collapsed to a bool — the only
    /// use in this workspace ignores the result entirely).
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        let std_guard = guard.inner.take().expect("guard present");
        let (std_guard, result) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
        result.timed_out()
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_mutation() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            *lock.lock() = true;
            cv.notify_one();
        });
        let (lock, cv) = &*pair;
        let mut ready = lock.lock();
        while !*ready {
            cv.wait(&mut ready);
        }
        h.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        assert!(cv.wait_for(&mut g, Duration::from_millis(5)));
    }
}
