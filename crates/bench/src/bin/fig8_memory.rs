//! **Figure 8**: memory footprints of OPT fine-tuning across sequence
//! lengths — dense, Long Exposure, and Long Exposure (optimal = frozen MLP
//! weights offloaded to host), with OOM detection against the A100.
//!
//! Paper: O(s²)→O(s) attention buffers, up to 2.77× reduction for OPT-1.3B
//! (1.69× for OPT-350M); dense OOMs first at long sequences.
//!
//! Also reports *measured* peak tensor bytes from the real allocator
//! tracker on sim-model steps.

use long_exposure::engine::StepMode;
use lx_bench::{calibrated_engine, default_opt, header, mean_step, row};
use lx_model::{ModelConfig, Precision};
use lx_peft::PeftMethod;
use lx_runtime::memsim::{step_memory, MemoryMode};
use lx_runtime::DeviceSpec;
use lx_tensor::memtrack;

fn main() {
    let cli = lx_bench::BenchCli::parse("fig8_memory");
    println!("== Fig. 8 (modelled): paper dims, A100-80GB, batch 4, LoRA ==\n");
    header(&[
        "model",
        "seq",
        "dense GB",
        "long-exp GB",
        "optimal GB",
        "reduction (opt)",
        "dense OOM?",
    ]);
    let dev = DeviceSpec::a100();
    let (attn_d, mlp_d, lf) = (0.25, 0.45, 0.003);
    for (name, cfg) in [
        ("opt-350m", ModelConfig::opt_350m()),
        ("opt-1.3b", ModelConfig::opt_1_3b()),
    ] {
        for seq in [512usize, 1024, 2048, 4096] {
            let dense = step_memory(&cfg, 4, seq, MemoryMode::Dense, 1.0, 1.0, lf);
            let lx = step_memory(&cfg, 4, seq, MemoryMode::LongExposure, attn_d, mlp_d, lf);
            let opt = step_memory(
                &cfg,
                4,
                seq,
                MemoryMode::LongExposureOptimal,
                attn_d,
                mlp_d,
                lf,
            );
            row(&[
                name.to_string(),
                seq.to_string(),
                format!(
                    "{:.1}{}",
                    dense.total_gb(),
                    if dense.oom_on(&dev) { " (OOM)" } else { "" }
                ),
                format!("{:.1}", lx.total_gb()),
                format!("{:.1}", opt.total_gb()),
                format!("{:.2}x", dense.total() / opt.total()),
                if dense.oom_on(&dev) { "yes" } else { "no" }.to_string(),
            ]);
        }
    }
    println!("\npaper reference: 2.77x reduction (OPT-1.3B), 1.69x (OPT-350M); dense OOMs at long seq.\n");

    println!("== Fig. 8 (measured): real peak tensor bytes on sim model steps ==\n");
    header(&["model", "seq", "dense MB", "long-exp MB", "reduction"]);
    let cfg = ModelConfig::opt_sim_small();
    for seq in [256usize, 512] {
        let batch = 1;
        let (mut engine, mut batcher) =
            calibrated_engine(cfg.clone(), PeftMethod::lora_default(), batch, seq, 42);
        let mut opt = default_opt();
        let ((), dense_peak) = memtrack::measure_peak(|| {
            mean_step(
                &mut engine,
                &mut batcher,
                batch,
                seq,
                StepMode::Dense,
                2,
                &mut opt,
            );
        });
        let ((), lx_peak) = memtrack::measure_peak(|| {
            mean_step(
                &mut engine,
                &mut batcher,
                batch,
                seq,
                StepMode::Sparse,
                2,
                &mut opt,
            );
        });
        row(&[
            cfg.name.clone(),
            seq.to_string(),
            format!("{:.1}", dense_peak as f64 / 1e6),
            format!("{:.1}", lx_peak as f64 / 1e6),
            format!("{:.2}x", dense_peak as f64 / lx_peak as f64),
        ]);
    }
    println!(
        "\nshape to check: attention-buffer term grows 4x per seq doubling when dense, ~2x sparse."
    );

    println!("\n== Precision modes (measured): backbone storage f32/f16/int8/nf4/nm24 ==\n");
    header(&[
        "model",
        "precision",
        "backbone MB (memtrack)",
        "backbone MB (storage)",
        "ratio vs f32",
    ]);
    // The memtrack column is the live-tensor delta of actually building the
    // backbone at each precision — the real allocator-tracked footprint —
    // and the storage column is the dtype-accounted sum over parameters.
    // The two agree because HalfTensor registers its true 2-byte elements
    // and QuantTensor its code bytes plus per-block scales.
    let mut f32_measured = 0usize;
    let mut ratios: Vec<(Precision, f64)> = Vec::new();
    for precision in [
        Precision::F32,
        Precision::F16Frozen,
        Precision::Int8Frozen,
        Precision::Nf4Frozen,
        Precision::Nm24Frozen,
    ] {
        let before = memtrack::current_bytes();
        let mut model = lx_bench::sim_model(ModelConfig::opt_sim_small(), 42);
        model.freeze_all();
        model.set_precision(precision);
        let measured = memtrack::current_bytes() - before;
        let storage = model.param_storage_bytes();
        if precision == Precision::F32 {
            f32_measured = measured;
        }
        let ratio = measured as f64 / f32_measured as f64;
        ratios.push((precision, ratio));
        row(&[
            model.config.name.clone(),
            precision.to_string(),
            format!("{:.2}", measured as f64 / 1e6),
            format!("{:.2}", storage as f64 / 1e6),
            format!("{:.3}x", ratio),
        ]);
    }
    println!(
        "\nacceptance (measured, vs the f32 run): f16 ≤ 0.55x, int8 ≤ 0.30x, nf4 ≤ 0.17x, \
         nm24 ≤ 0.60x (matrices shrink; biases/LayerNorm stay f32; 2:4 matrices are \
         0.5625x — half the values plus one mask byte per group of four)."
    );
    if cli.smoke {
        let gates = [
            (Precision::F16Frozen, 0.55),
            (Precision::Int8Frozen, 0.30),
            (Precision::Nf4Frozen, 0.17),
            (Precision::Nm24Frozen, 0.60),
        ];
        let mut failed = false;
        for (precision, gate) in gates {
            let ratio = ratios
                .iter()
                .find(|(p, _)| *p == precision)
                .map(|(_, r)| *r)
                .expect("precision measured above");
            if ratio > gate {
                eprintln!(
                    "fig8_memory smoke gate: {precision} measured backbone is {ratio:.3}x of \
                     f32, gate is {gate}x"
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
    }
    cli.finish();
}
