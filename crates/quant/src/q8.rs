//! Per-block-scaled symmetric int8: `scale = absmax / 127` per
//! [`BLOCK`]-element block, `code = round(v / scale)` in
//! `[-127, 127]`, dequant `code · scale`.
//!
//! Symmetric (no zero-point): weight distributions are zero-centred, and a
//! zero-point would make the fused GEMM dequant an affine transform instead
//! of a single multiply. `-128` is never produced, so negation is always
//! exact.
//!
//! Round-trip error is bounded by half a step: `|v − dq(q(v))| ≤ scale/2 =
//! absmax/254` per block (for finite inputs; non-finite inputs follow the
//! crate-level clamp policy).

use crate::{finite_absmax, n_blocks, sanitize, Q8View, BLOCK};

/// Quantize to `(codes, per-block scales)`. `codes.len() == values.len()`,
/// `scales.len() == n_blocks(values.len())`.
pub fn quantize(values: &[f32]) -> (Vec<i8>, Vec<f32>) {
    let mut codes = Vec::with_capacity(values.len());
    let mut scales = Vec::with_capacity(n_blocks(values.len()));
    for block in values.chunks(BLOCK) {
        let absmax = finite_absmax(block);
        let scale = absmax / 127.0;
        scales.push(scale);
        if scale == 0.0 {
            codes.extend(std::iter::repeat_n(0i8, block.len()));
            continue;
        }
        for &v in block {
            let v = sanitize(v, absmax);
            codes.push((v / scale).round().clamp(-127.0, 127.0) as i8);
        }
    }
    (codes, scales)
}

/// Dequantize the whole buffer into `out` (`out.len() == codes.len()`).
pub fn dequantize(codes: &[i8], scales: &[f32], out: &mut [f32]) {
    assert_eq!(out.len(), codes.len(), "q8 dequantize: output length");
    let view = Q8View::new(codes, scales);
    for (i, o) in out.iter_mut().enumerate() {
        *o = view.get(i);
    }
}

/// Round every value through the codec in place (`dequantize(quantize(v))`)
/// — what a differential test applies to an f32 model so it computes the
/// exact function its int8-stored twin does.
pub fn round_slice(values: &mut [f32]) {
    let (codes, scales) = quantize(values);
    dequantize(&codes, &scales, values);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::pseudo;

    #[test]
    fn roundtrip_error_is_bounded_by_half_a_step() {
        for (len, seed) in [(64usize, 1u32), (1000, 2), (63, 3), (129, 4)] {
            let vals = pseudo(len, 2.0, seed);
            let (codes, scales) = quantize(&vals);
            assert_eq!(codes.len(), len);
            assert_eq!(scales.len(), n_blocks(len));
            let mut out = vec![0.0f32; len];
            dequantize(&codes, &scales, &mut out);
            for (i, (&v, &dq)) in vals.iter().zip(&out).enumerate() {
                let bound = scales[i / BLOCK] / 2.0 + 1e-7;
                assert!((v - dq).abs() <= bound, "idx {i}: {v} -> {dq}");
            }
        }
    }

    #[test]
    fn block_absmax_is_exactly_representable() {
        // The absmax of every block maps to code ±127 and decodes exactly.
        let mut vals = pseudo(130, 1.0, 5);
        vals[3] = 4.0; // block 0 absmax
        vals[70] = -8.0; // block 1 absmax
        let (codes, scales) = quantize(&vals);
        let v = Q8View::new(&codes, &scales);
        assert_eq!(codes[3], 127);
        assert_eq!(v.get(3), 4.0);
        assert_eq!(codes[70], -127);
        assert_eq!(v.get(70), -8.0);
    }

    #[test]
    fn all_zero_blocks_store_zero_scale_without_nan() {
        let vals = vec![0.0f32; 100];
        let (codes, scales) = quantize(&vals);
        assert!(codes.iter().all(|&c| c == 0));
        assert!(scales.iter().all(|&s| s == 0.0));
        let mut out = vec![1.0f32; 100];
        dequantize(&codes, &scales, &mut out);
        assert!(out.iter().all(|&v| v == 0.0 && !v.is_nan()));
    }

    #[test]
    fn tail_blocks_cover_every_length() {
        for len in [1usize, 63, 64, 65, 127, 128, 129, 191] {
            let vals = pseudo(len, 1.0, 100 + len as u32);
            let (codes, scales) = quantize(&vals);
            assert_eq!(codes.len(), len);
            assert_eq!(scales.len(), len.div_ceil(BLOCK));
            let mut out = vec![0.0f32; len];
            dequantize(&codes, &scales, &mut out);
            // The tail block's own absmax governs its error bound.
            for (i, (&v, &dq)) in vals.iter().zip(&out).enumerate() {
                assert!((v - dq).abs() <= scales[i / BLOCK] / 2.0 + 1e-7);
            }
        }
    }

    #[test]
    fn non_finite_inputs_clamp_deterministically() {
        let mut vals = pseudo(64, 1.0, 6);
        vals[0] = f32::NAN;
        vals[1] = f32::INFINITY;
        vals[2] = f32::NEG_INFINITY;
        vals[3] = 0.5; // a finite value setting the absmax floor
        let absmax = finite_absmax(&vals);
        let (codes, scales) = quantize(&vals);
        let v = Q8View::new(&codes, &scales);
        assert_eq!(codes[0], 0, "NaN must encode to 0");
        assert_eq!(v.get(1), absmax, "+inf clamps to +absmax");
        assert_eq!(v.get(2), -absmax, "-inf clamps to -absmax");
        // Encoding the same buffer twice is identical (determinism).
        let (codes2, scales2) = quantize(&vals);
        assert_eq!(codes, codes2);
        assert_eq!(scales, scales2);
    }

    #[test]
    fn all_non_finite_block_decodes_to_zeros() {
        let vals = vec![f32::NAN, f32::INFINITY, f32::NEG_INFINITY];
        let (codes, scales) = quantize(&vals);
        assert_eq!(scales, vec![0.0]);
        let mut out = vec![9.0f32; 3];
        dequantize(&codes, &scales, &mut out);
        assert_eq!(out, vec![0.0; 3]);
    }

    #[test]
    fn round_slice_is_idempotent() {
        let mut vals = pseudo(200, 3.0, 7);
        round_slice(&mut vals);
        let once = vals.clone();
        round_slice(&mut vals);
        assert_eq!(vals, once, "rounding an already-rounded buffer is exact");
    }

    #[test]
    fn windowed_decode_is_bit_identical_to_full_decode() {
        // The slab-decode contract: any element window decodes to the same
        // bits as the full-buffer decode, including windows that straddle
        // block boundaries.
        let vals = pseudo(320, 1.5, 8);
        let (codes, scales) = quantize(&vals);
        let mut full = vec![0.0f32; vals.len()];
        dequantize(&codes, &scales, &mut full);
        let view = Q8View::new(&codes, &scales);
        for (start, n) in [(0usize, 64usize), (50, 30), (63, 2), (100, 220)] {
            for (i, f) in full.iter().enumerate().skip(start).take(n) {
                assert_eq!(view.get(i).to_bits(), f.to_bits(), "idx {i}");
            }
        }
    }
}
