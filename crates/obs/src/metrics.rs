//! Always-on counters and log-bucketed latency histograms.
//!
//! Everything here is plain atomics: recording never blocks, never
//! allocates, and is safe from any thread (including `lx-parallel` workers).
//! Hot paths look their instrument up once (a `OnceLock<Arc<Counter>>`
//! static) and pay a single `fetch_add` per event thereafter.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// A monotonic event counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub const fn new() -> Self {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Zero the counter (bench arms isolating their own window).
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Sub-bucket resolution: 2^3 = 8 linear sub-buckets per power of two.
const SUB_BITS: u32 = 3;
const SUBS: u64 = 1 << SUB_BITS;
/// Values below this land in exact unit buckets (indices `0..16`).
const EXACT_LIMIT: u64 = 1 << (SUB_BITS + 1);
const N_BUCKETS: usize = 64 << SUB_BITS;

/// A log-linear histogram of `u64` samples (nanoseconds, by convention).
///
/// Buckets are 8 linear sub-buckets per octave, so the bucket width is at
/// most 1/8 of the value — percentile readouts carry ≤ ~7% relative error
/// (the oracle test in `lx-integration` pins this down). Recording is two
/// relaxed `fetch_add`s plus min/max maintenance; readout walks 512 buckets.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram {
            buckets: (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    #[inline]
    fn bucket_index(v: u64) -> usize {
        if v < EXACT_LIMIT {
            return v as usize;
        }
        let octave = 63 - v.leading_zeros() as u64; // ≥ SUB_BITS + 1
        let sub = (v >> (octave - SUB_BITS as u64)) & (SUBS - 1);
        (octave << SUB_BITS) as usize + sub as usize
    }

    /// Midpoint of bucket `i` (exact for the unit buckets).
    fn representative(i: usize) -> u64 {
        if i < EXACT_LIMIT as usize {
            return i as u64;
        }
        let octave = (i >> SUB_BITS) as u64;
        let sub = (i as u64) & (SUBS - 1);
        let width = 1u64 << (octave - SUB_BITS as u64);
        let lower = (1u64 << octave) + sub * width;
        lower + width / 2
    }

    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record a duration in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos() as u64);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        let m = self.min.load(Ordering::Relaxed);
        if m == u64::MAX {
            0
        } else {
            m
        }
    }

    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// The `q`-quantile (`0.0..=1.0`) as a bucket-midpoint estimate, clamped
    /// to the recorded min/max. Returns 0 on an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c == 0 {
                continue;
            }
            cum += c;
            if cum >= target {
                return Self::representative(i).clamp(self.min(), self.max());
            }
        }
        self.max()
    }

    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    pub fn p90(&self) -> u64 {
        self.percentile(0.90)
    }

    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// Zero every bucket and statistic (bench arms isolating a window).
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            sum: self.sum(),
            min: self.min(),
            max: self.max(),
            p50: self.p50(),
            p90: self.p90(),
            p99: self.p99(),
        }
    }
}

/// Point-in-time view of one histogram's statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSummary {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
}

/// Process-wide get-or-create store of named counters and histograms.
///
/// Keys are the dotted metric names, optionally with an embedded
/// `{label="value",...}` suffix (see [`Registry::counter_labeled`]). Lookup
/// takes a mutex — hot paths should cache the returned `Arc` in a
/// `OnceLock` static and never touch the registry again.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

/// The global registry every instrumented crate records into.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

fn labeled_key(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", v.replace('"', "'")))
        .collect();
    format!("{name}{{{}}}", pairs.join(","))
}

impl Registry {
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("counter registry");
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(Counter::new()))
            .clone()
    }

    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("histogram registry");
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new()))
            .clone()
    }

    /// [`Self::counter`] with `{k="v",...}` labels embedded in the key.
    pub fn counter_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.counter(&labeled_key(name, labels))
    }

    /// [`Self::histogram`] with `{k="v",...}` labels embedded in the key.
    pub fn histogram_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.histogram(&labeled_key(name, labels))
    }

    /// Every registered counter's `(key, value)`, sorted by key.
    pub fn counters(&self) -> Vec<(String, u64)> {
        self.counters
            .lock()
            .expect("counter registry")
            .iter()
            .map(|(k, c)| (k.clone(), c.get()))
            .collect()
    }

    /// Every registered histogram's `(key, summary)`, sorted by key.
    pub fn histograms(&self) -> Vec<(String, HistogramSummary)> {
        self.histograms
            .lock()
            .expect("histogram registry")
            .iter()
            .map(|(k, h)| (k.clone(), h.summary()))
            .collect()
    }

    /// Zero every registered instrument (registrations are kept, so cached
    /// `Arc`s in hot paths stay valid).
    pub fn reset(&self) {
        for c in self.counters.lock().expect("counter registry").values() {
            c.reset();
        }
        for h in self.histograms.lock().expect("histogram registry").values() {
            h.reset();
        }
    }

    /// Prometheus text exposition of the whole registry: counters as-is,
    /// histograms as `summary` quantile series plus `_count`/`_sum`. Dots in
    /// metric names become underscores; embedded `{...}` labels are merged
    /// with the `quantile` label.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut typed: Vec<String> = Vec::new();
        for (key, value) in self.counters() {
            let (name, labels) = split_key(&key);
            let name = sanitize(&name);
            if !typed.contains(&name) {
                out.push_str(&format!("# TYPE {name} counter\n"));
                typed.push(name.clone());
            }
            out.push_str(&format!("{name}{labels} {value}\n"));
        }
        for (key, s) in self.histograms() {
            let (name, labels) = split_key(&key);
            let name = sanitize(&name);
            if !typed.contains(&name) {
                out.push_str(&format!("# TYPE {name} summary\n"));
                typed.push(name.clone());
            }
            for (q, v) in [("0.5", s.p50), ("0.9", s.p90), ("0.99", s.p99)] {
                out.push_str(&format!(
                    "{name}{} {v}\n",
                    merge_label(&labels, &format!("quantile=\"{q}\""))
                ));
            }
            out.push_str(&format!("{name}_count{labels} {}\n", s.count));
            out.push_str(&format!("{name}_sum{labels} {}\n", s.sum));
        }
        out
    }
}

/// Split `name{labels}` into `(name, "{labels}" or "")`.
fn split_key(key: &str) -> (String, String) {
    match key.find('{') {
        Some(i) => (key[..i].to_string(), key[i..].to_string()),
        None => (key.to_string(), String::new()),
    }
}

/// Prometheus metric names allow `[a-zA-Z0-9_:]`; map everything else to `_`.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Add one `k="v"` pair to an existing `{...}` suffix (or start one).
fn merge_label(labels: &str, pair: &str) -> String {
    if labels.is_empty() {
        format!("{{{pair}}}")
    } else {
        format!("{},{pair}}}", &labels[..labels.len() - 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn histogram_basics() {
        let h = Histogram::new();
        assert_eq!(h.percentile(0.5), 0);
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100);
        let p50 = h.p50();
        assert!((43..=57).contains(&p50), "p50 {p50}");
        let p99 = h.p99();
        assert!((92..=100).contains(&p99), "p99 {p99}");
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn bucket_roundtrip_error_is_bounded() {
        // Every value's bucket midpoint is within 1/16 of the value (plus
        // the half-unit floor for tiny values).
        for v in (0..60).map(|e| 1u64 << e).chain([3, 7, 77, 12345, 999_999]) {
            let mid = Histogram::representative(Histogram::bucket_index(v));
            let err = mid.abs_diff(v) as f64;
            assert!(err <= v as f64 / 16.0 + 1.0, "v={v} mid={mid} err={err}");
        }
    }

    #[test]
    fn extreme_values_stay_in_range() {
        let h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    fn labeled_keys_compose() {
        assert_eq!(
            labeled_key("serve.slice.run_ns", &[("tenant", "a")]),
            "serve.slice.run_ns{tenant=\"a\"}"
        );
        assert_eq!(labeled_key("plain", &[]), "plain");
    }

    #[test]
    fn prometheus_rendering_is_wellformed() {
        let reg = Registry::default();
        reg.counter("unit.test.hits").add(3);
        reg.histogram_labeled("unit.test.lat_ns", &[("tenant", "t0")])
            .record(1000);
        let text = reg.render_prometheus();
        assert!(text.contains("unit_test_hits 3"));
        assert!(text.contains("unit_test_lat_ns{tenant=\"t0\",quantile=\"0.5\"}"));
        assert!(text.contains("unit_test_lat_ns_count{tenant=\"t0\"} 1"));
        assert!(!text.contains("NaN"));
    }
}
