//! Neuron-centric block-sparse MLP kernels (paper §VI-B).
//!
//! When a ReLU MLP neuron is inactive for a whole batch, the corresponding
//! *column* of FC1 and *row* of FC2 drop out of both the forward and the
//! backward pass. Long Exposure filters neurons at block granularity, so the
//! kernels here operate on a sorted list of active neuron *blocks*:
//!
//! * FC1 weights are stored **column-major** ([`ColMajorWeights`]) so an
//!   active output-neuron block is a contiguous `block·d_in` slab;
//! * FC2 weights stay **row-major** so an active input-neuron block is a
//!   contiguous `block·d_out` slab.
//!
//! This mirrors the paper's memory-coalescing layout choice and means the
//! kernels never convert data formats at runtime — the property that makes
//! them "dynamic-aware".

use lx_parallel::parallel_for;

/// Sorted set of active neuron blocks out of `n_blocks_total`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NeuronBlockSet {
    pub block_size: usize,
    pub n_blocks_total: usize,
    /// Sorted, deduplicated active block indices.
    pub active: Vec<u32>,
}

impl NeuronBlockSet {
    /// All blocks active (the dense case).
    pub fn all(n_blocks_total: usize, block_size: usize) -> Self {
        NeuronBlockSet {
            block_size,
            n_blocks_total,
            active: (0..n_blocks_total as u32).collect(),
        }
    }

    /// From a boolean per-block mask.
    pub fn from_mask(mask: &[bool], block_size: usize) -> Self {
        NeuronBlockSet {
            block_size,
            n_blocks_total: mask.len(),
            active: mask
                .iter()
                .enumerate()
                .filter_map(|(i, &a)| a.then_some(i as u32))
                .collect(),
        }
    }

    /// From an arbitrary (possibly unsorted) index list.
    pub fn from_indices(mut indices: Vec<u32>, n_blocks_total: usize, block_size: usize) -> Self {
        indices.sort_unstable();
        indices.dedup();
        assert!(
            indices
                .last()
                .is_none_or(|&l| (l as usize) < n_blocks_total),
            "active block out of range"
        );
        NeuronBlockSet {
            block_size,
            n_blocks_total,
            active: indices,
        }
    }

    pub fn n_active(&self) -> usize {
        self.active.len()
    }

    /// Active neurons (blocks × block size).
    pub fn active_neurons(&self) -> usize {
        self.active.len() * self.block_size
    }

    /// Total neurons covered by the grid.
    pub fn total_neurons(&self) -> usize {
        self.n_blocks_total * self.block_size
    }

    pub fn density(&self) -> f32 {
        if self.n_blocks_total == 0 {
            return 0.0;
        }
        self.active.len() as f32 / self.n_blocks_total as f32
    }

    pub fn sparsity(&self) -> f32 {
        1.0 - self.density()
    }

    pub fn is_dense(&self) -> bool {
        self.active.len() == self.n_blocks_total
    }
}

/// FC1 weights stored column-major: `data[col · d_in + row]`, i.e. each
/// output-neuron column is contiguous.
#[derive(Debug, Clone)]
pub struct ColMajorWeights {
    pub d_in: usize,
    pub d_out: usize,
    data: Vec<f32>,
}

impl ColMajorWeights {
    /// Convert from a row-major `d_in × d_out` weight matrix.
    pub fn from_row_major(w: &[f32], d_in: usize, d_out: usize) -> Self {
        assert_eq!(w.len(), d_in * d_out);
        let mut data = vec![0.0; d_in * d_out];
        for r in 0..d_in {
            for c in 0..d_out {
                data[c * d_in + r] = w[r * d_out + c];
            }
        }
        ColMajorWeights { d_in, d_out, data }
    }

    pub fn zeros(d_in: usize, d_out: usize) -> Self {
        ColMajorWeights {
            d_in,
            d_out,
            data: vec![0.0; d_in * d_out],
        }
    }

    /// Contiguous column `c` (one output neuron's weights).
    #[inline]
    pub fn col(&self, c: usize) -> &[f32] {
        &self.data[c * self.d_in..(c + 1) * self.d_in]
    }

    #[inline]
    pub fn col_mut(&mut self, c: usize) -> &mut [f32] {
        &mut self.data[c * self.d_in..(c + 1) * self.d_in]
    }

    /// Back to row-major (tests, checkpointing).
    pub fn to_row_major(&self) -> Vec<f32> {
        let mut w = vec![0.0; self.d_in * self.d_out];
        for c in 0..self.d_out {
            for r in 0..self.d_in {
                w[r * self.d_out + c] = self.data[c * self.d_in + r];
            }
        }
        w
    }

    pub fn raw(&self) -> &[f32] {
        &self.data
    }

    pub fn raw_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }
}

/// FC1 forward: `z[r, a·b+t] = ⟨x_r, w1.col(active[a]·b+t)⟩ (+ bias)`.
///
/// `z` is *compact*: `rows × active_neurons`, holding only active columns.
pub fn fc1_forward(
    x: &[f32],
    rows: usize,
    w1t: &[f32],
    d_in: usize,
    bias: Option<&[f32]>,
    set: &NeuronBlockSet,
    z: &mut [f32],
) {
    debug_assert_eq!(
        w1t.len(),
        set.total_neurons() * d_in,
        "fc1: w1t is d_out×d_in"
    );
    let b = set.block_size;
    let width = set.active_neurons();
    assert_eq!(x.len(), rows * d_in, "fc1: x is rows×d_in");
    assert_eq!(z.len(), rows * width, "fc1: z is rows×active");
    let z_ptr = SendPtr(z.as_mut_ptr());
    let grain = (1 << 15) / (width * d_in).max(1);
    parallel_for(0..rows, grain.max(1), |rr| {
        let z_ptr = &z_ptr;
        for r in rr {
            let x_row = &x[r * d_in..(r + 1) * d_in];
            // SAFETY: disjoint rows of z per task.
            let z_row = unsafe { std::slice::from_raw_parts_mut(z_ptr.0.add(r * width), width) };
            for (a, &blk) in set.active.iter().enumerate() {
                for t in 0..b {
                    let neuron = blk as usize * b + t;
                    let mut acc = dot(x_row, &w1t[neuron * d_in..(neuron + 1) * d_in]);
                    if let Some(bias) = bias {
                        acc += bias[neuron];
                    }
                    z_row[a * b + t] = acc;
                }
            }
        }
    });
}

/// FC2 forward: `y[r,:] = Σ_active a[r, blk]·w2_row(neuron) (+ bias)`.
///
/// `w2` is row-major `h × d_out`; `a` is compact `rows × active_neurons`.
pub fn fc2_forward(
    a: &[f32],
    rows: usize,
    w2: &[f32],
    d_out: usize,
    bias: Option<&[f32]>,
    set: &NeuronBlockSet,
    y: &mut [f32],
) {
    let b = set.block_size;
    let width = set.active_neurons();
    assert_eq!(a.len(), rows * width, "fc2: a is rows×active");
    assert_eq!(w2.len(), set.total_neurons() * d_out, "fc2: w2 is h×d_out");
    assert_eq!(y.len(), rows * d_out, "fc2: y is rows×d_out");
    let y_ptr = SendPtr(y.as_mut_ptr());
    let grain = (1 << 15) / (width * d_out).max(1);
    parallel_for(0..rows, grain.max(1), |rr| {
        let y_ptr = &y_ptr;
        for r in rr {
            // SAFETY: disjoint rows of y per task.
            let y_row = unsafe { std::slice::from_raw_parts_mut(y_ptr.0.add(r * d_out), d_out) };
            match bias {
                Some(bias) => y_row.copy_from_slice(bias),
                None => y_row.fill(0.0),
            }
            let a_row = &a[r * width..(r + 1) * width];
            for (ai, &blk) in set.active.iter().enumerate() {
                for t in 0..b {
                    let av = a_row[ai * b + t];
                    if av == 0.0 {
                        continue;
                    }
                    let neuron = blk as usize * b + t;
                    let w_row = &w2[neuron * d_out..(neuron + 1) * d_out];
                    axpy(y_row, av, w_row);
                }
            }
        }
    });
}

/// FC2 backward w.r.t. its input: `da[r, blk] = ⟨dy_r, w2_row(neuron)⟩`.
pub fn fc2_backward_input(
    dy: &[f32],
    rows: usize,
    w2: &[f32],
    d_out: usize,
    set: &NeuronBlockSet,
    da: &mut [f32],
) {
    let b = set.block_size;
    let width = set.active_neurons();
    assert_eq!(dy.len(), rows * d_out);
    assert_eq!(da.len(), rows * width);
    let da_ptr = SendPtr(da.as_mut_ptr());
    let grain = (1 << 15) / (width * d_out).max(1);
    parallel_for(0..rows, grain.max(1), |rr| {
        let da_ptr = &da_ptr;
        for r in rr {
            let dy_row = &dy[r * d_out..(r + 1) * d_out];
            // SAFETY: disjoint rows per task.
            let da_row = unsafe { std::slice::from_raw_parts_mut(da_ptr.0.add(r * width), width) };
            for (ai, &blk) in set.active.iter().enumerate() {
                for t in 0..b {
                    let neuron = blk as usize * b + t;
                    da_row[ai * b + t] = dot(dy_row, &w2[neuron * d_out..(neuron + 1) * d_out]);
                }
            }
        }
    });
}

/// FC1 backward w.r.t. its input: `dx[r,:] = Σ_active dz[r, blk]·w1.col(neuron)`.
pub fn fc1_backward_input(
    dz: &[f32],
    rows: usize,
    w1t: &[f32],
    d_in: usize,
    set: &NeuronBlockSet,
    dx: &mut [f32],
) {
    debug_assert_eq!(w1t.len(), set.total_neurons() * d_in);
    let b = set.block_size;
    let width = set.active_neurons();
    assert_eq!(dz.len(), rows * width);
    assert_eq!(dx.len(), rows * d_in);
    let dx_ptr = SendPtr(dx.as_mut_ptr());
    let grain = (1 << 15) / (width * d_in).max(1);
    parallel_for(0..rows, grain.max(1), |rr| {
        let dx_ptr = &dx_ptr;
        for r in rr {
            // SAFETY: disjoint rows per task.
            let dx_row = unsafe { std::slice::from_raw_parts_mut(dx_ptr.0.add(r * d_in), d_in) };
            dx_row.fill(0.0);
            let dz_row = &dz[r * width..(r + 1) * width];
            for (ai, &blk) in set.active.iter().enumerate() {
                for t in 0..b {
                    let g = dz_row[ai * b + t];
                    if g == 0.0 {
                        continue;
                    }
                    let neuron = blk as usize * b + t;
                    axpy(dx_row, g, &w1t[neuron * d_in..(neuron + 1) * d_in]);
                }
            }
        }
    });
}

/// Accumulate FC1 weight gradients for *active columns only*:
/// `dw1.col(neuron) += Σ_r x_r · dz[r, compact(neuron)]`.
pub fn fc1_grad_weights(
    x: &[f32],
    dz: &[f32],
    rows: usize,
    d_in: usize,
    set: &NeuronBlockSet,
    dw1t: &mut [f32],
    dbias: Option<&mut [f32]>,
) {
    debug_assert_eq!(dw1t.len(), set.total_neurons() * d_in);
    let b = set.block_size;
    let width = set.active_neurons();
    assert_eq!(x.len(), rows * d_in);
    assert_eq!(dz.len(), rows * width);
    let dw_ptr = SendPtr(dw1t.as_mut_ptr());
    // Parallel over active blocks: each task owns disjoint weight columns.
    parallel_for(0..set.active.len(), 1, |blocks| {
        let dw_ptr = &dw_ptr;
        for ai in blocks {
            let blk = set.active[ai] as usize;
            for t in 0..b {
                let neuron = blk * b + t;
                // SAFETY: column `neuron` is owned by exactly one task.
                let col =
                    unsafe { std::slice::from_raw_parts_mut(dw_ptr.0.add(neuron * d_in), d_in) };
                for r in 0..rows {
                    let g = dz[r * width + ai * b + t];
                    if g == 0.0 {
                        continue;
                    }
                    axpy(col, g, &x[r * d_in..(r + 1) * d_in]);
                }
            }
        }
    });
    if let Some(dbias) = dbias {
        for (ai, &blk) in set.active.iter().enumerate() {
            for t in 0..b {
                let neuron = blk as usize * b + t;
                let mut acc = 0.0;
                for r in 0..rows {
                    acc += dz[r * width + ai * b + t];
                }
                dbias[neuron] += acc;
            }
        }
    }
}

/// Accumulate FC2 weight gradients for *active rows only*:
/// `dw2_row(neuron) += Σ_r a[r, compact(neuron)] · dy_r`.
pub fn fc2_grad_weights(
    a: &[f32],
    dy: &[f32],
    rows: usize,
    d_out: usize,
    set: &NeuronBlockSet,
    dw2: &mut [f32],
) {
    let b = set.block_size;
    let width = set.active_neurons();
    assert_eq!(a.len(), rows * width);
    assert_eq!(dy.len(), rows * d_out);
    assert_eq!(dw2.len(), set.total_neurons() * d_out);
    let dw_ptr = SendPtr(dw2.as_mut_ptr());
    parallel_for(0..set.active.len(), 1, |blocks| {
        let dw_ptr = &dw_ptr;
        for ai in blocks {
            let blk = set.active[ai] as usize;
            for t in 0..b {
                let neuron = blk * b + t;
                // SAFETY: weight row `neuron` is owned by exactly one task.
                let w_row =
                    unsafe { std::slice::from_raw_parts_mut(dw_ptr.0.add(neuron * d_out), d_out) };
                for r in 0..rows {
                    let av = a[r * width + ai * b + t];
                    if av == 0.0 {
                        continue;
                    }
                    axpy(w_row, av, &dy[r * d_out..(r + 1) * d_out]);
                }
            }
        }
    });
}

#[inline]
fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[inline]
fn axpy(out: &mut [f32], a: f32, x: &[f32]) {
    for (o, &v) in out.iter_mut().zip(x) {
        *o += a * v;
    }
}

struct SendPtr(*mut f32);
// SAFETY: disjoint-region writes per task throughout this module.
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

#[cfg(test)]
mod tests {
    use super::*;
    use lx_tensor::gemm::gemm;
    use lx_tensor::rng::randn_vec;

    const ROWS: usize = 6;
    const D_IN: usize = 10;
    const H: usize = 16; // 4 blocks of 4
    const D_OUT: usize = 12;
    const B: usize = 4;

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() <= tol * (1.0 + y.abs()),
                "idx {i}: {x} vs {y}"
            );
        }
    }

    fn dense_fc1(x: &[f32], w1: &[f32], bias: &[f32]) -> Vec<f32> {
        let mut z = vec![0.0; ROWS * H];
        gemm(ROWS, D_IN, H, x, w1, &mut z, 0.0);
        for r in 0..ROWS {
            for c in 0..H {
                z[r * H + c] += bias[c];
            }
        }
        z
    }

    #[test]
    fn block_set_constructors() {
        let all = NeuronBlockSet::all(4, 8);
        assert!(all.is_dense());
        assert_eq!(all.active_neurons(), 32);
        let m = NeuronBlockSet::from_mask(&[true, false, true, false], 8);
        assert_eq!(m.active, vec![0, 2]);
        assert!((m.sparsity() - 0.5).abs() < 1e-6);
        let i = NeuronBlockSet::from_indices(vec![3, 1, 1], 4, 8);
        assert_eq!(i.active, vec![1, 3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn block_set_range_check() {
        NeuronBlockSet::from_indices(vec![4], 4, 8);
    }

    #[test]
    fn col_major_roundtrip() {
        let w = randn_vec(D_IN * H, 1.0, 1);
        let cm = ColMajorWeights::from_row_major(&w, D_IN, H);
        assert_eq!(cm.to_row_major(), w);
        // col(c)[r] == w[r*H + c]
        for c in [0, 5, 15] {
            for r in 0..D_IN {
                assert_eq!(cm.col(c)[r], w[r * H + c]);
            }
        }
    }

    #[test]
    fn fc1_dense_set_matches_gemm() {
        let x = randn_vec(ROWS * D_IN, 1.0, 2);
        let w1 = randn_vec(D_IN * H, 1.0, 3);
        let bias = randn_vec(H, 0.5, 4);
        let cm = ColMajorWeights::from_row_major(&w1, D_IN, H);
        let set = NeuronBlockSet::all(H / B, B);
        let mut z = vec![0.0; ROWS * H];
        fc1_forward(&x, ROWS, cm.raw(), D_IN, Some(&bias), &set, &mut z);
        assert_close(&z, &dense_fc1(&x, &w1, &bias), 1e-4);
    }

    #[test]
    fn fc1_sparse_set_selects_columns() {
        let x = randn_vec(ROWS * D_IN, 1.0, 5);
        let w1 = randn_vec(D_IN * H, 1.0, 6);
        let bias = vec![0.0; H];
        let cm = ColMajorWeights::from_row_major(&w1, D_IN, H);
        let set = NeuronBlockSet::from_indices(vec![0, 2], H / B, B);
        let mut z = vec![0.0; ROWS * set.active_neurons()];
        fc1_forward(&x, ROWS, cm.raw(), D_IN, Some(&bias), &set, &mut z);
        let dense = dense_fc1(&x, &w1, &bias);
        for r in 0..ROWS {
            for (ai, &blk) in set.active.iter().enumerate() {
                for t in 0..B {
                    let neuron = blk as usize * B + t;
                    assert!(
                        (z[r * 8 + ai * B + t] - dense[r * H + neuron]).abs() < 1e-4,
                        "row {r} neuron {neuron}"
                    );
                }
            }
        }
    }

    #[test]
    fn fc2_dense_set_matches_gemm() {
        let a = randn_vec(ROWS * H, 1.0, 7);
        let w2 = randn_vec(H * D_OUT, 1.0, 8);
        let bias = randn_vec(D_OUT, 0.5, 9);
        let set = NeuronBlockSet::all(H / B, B);
        let mut y = vec![0.0; ROWS * D_OUT];
        fc2_forward(&a, ROWS, &w2, D_OUT, Some(&bias), &set, &mut y);
        let mut expect = vec![0.0; ROWS * D_OUT];
        gemm(ROWS, H, D_OUT, &a, &w2, &mut expect, 0.0);
        for r in 0..ROWS {
            for c in 0..D_OUT {
                expect[r * D_OUT + c] += bias[c];
            }
        }
        assert_close(&y, &expect, 1e-4);
    }

    #[test]
    fn fc2_sparse_equals_dense_with_zeroed_inactive() {
        let set = NeuronBlockSet::from_indices(vec![1, 3], H / B, B);
        let a_compact = randn_vec(ROWS * set.active_neurons(), 1.0, 10);
        let w2 = randn_vec(H * D_OUT, 1.0, 11);
        let mut y = vec![0.0; ROWS * D_OUT];
        fc2_forward(&a_compact, ROWS, &w2, D_OUT, None, &set, &mut y);
        // Expand compact A to full H with zeros in inactive blocks.
        let mut a_full = vec![0.0; ROWS * H];
        for r in 0..ROWS {
            for (ai, &blk) in set.active.iter().enumerate() {
                for t in 0..B {
                    a_full[r * H + blk as usize * B + t] = a_compact[r * 8 + ai * B + t];
                }
            }
        }
        let mut expect = vec![0.0; ROWS * D_OUT];
        gemm(ROWS, H, D_OUT, &a_full, &w2, &mut expect, 0.0);
        assert_close(&y, &expect, 1e-4);
    }

    #[test]
    fn backward_input_paths_match_dense() {
        let set = NeuronBlockSet::from_indices(vec![0, 3], H / B, B);
        let width = set.active_neurons();
        let w1 = randn_vec(D_IN * H, 1.0, 12);
        let w2 = randn_vec(H * D_OUT, 1.0, 13);
        let cm = ColMajorWeights::from_row_major(&w1, D_IN, H);
        let dy = randn_vec(ROWS * D_OUT, 1.0, 14);
        let dz = randn_vec(ROWS * width, 1.0, 15);

        let mut da = vec![0.0; ROWS * width];
        fc2_backward_input(&dy, ROWS, &w2, D_OUT, &set, &mut da);
        // Reference: dY · W2ᵀ then gather active columns.
        let mut da_full = vec![0.0; ROWS * H];
        for r in 0..ROWS {
            for n in 0..H {
                let mut acc = 0.0;
                for c in 0..D_OUT {
                    acc += dy[r * D_OUT + c] * w2[n * D_OUT + c];
                }
                da_full[r * H + n] = acc;
            }
        }
        for r in 0..ROWS {
            for (ai, &blk) in set.active.iter().enumerate() {
                for t in 0..B {
                    assert!(
                        (da[r * width + ai * B + t] - da_full[r * H + blk as usize * B + t]).abs()
                            < 1e-4
                    );
                }
            }
        }

        let mut dx = vec![0.0; ROWS * D_IN];
        fc1_backward_input(&dz, ROWS, cm.raw(), D_IN, &set, &mut dx);
        // Reference: scatter dz to full width then dZ · W1ᵀ.
        let mut dz_full = vec![0.0; ROWS * H];
        for r in 0..ROWS {
            for (ai, &blk) in set.active.iter().enumerate() {
                for t in 0..B {
                    dz_full[r * H + blk as usize * B + t] = dz[r * width + ai * B + t];
                }
            }
        }
        let mut expect = vec![0.0; ROWS * D_IN];
        for r in 0..ROWS {
            for n in 0..H {
                let g = dz_full[r * H + n];
                for i in 0..D_IN {
                    expect[r * D_IN + i] += g * w1[i * H + n];
                }
            }
        }
        assert_close(&dx, &expect, 1e-4);
    }

    #[test]
    fn weight_gradients_touch_only_active_blocks() {
        let set = NeuronBlockSet::from_indices(vec![2], H / B, B);
        let width = set.active_neurons();
        let x = randn_vec(ROWS * D_IN, 1.0, 16);
        let dz = randn_vec(ROWS * width, 1.0, 17);
        let mut dw1 = ColMajorWeights::zeros(D_IN, H);
        let mut dbias = vec![0.0f32; H];
        fc1_grad_weights(&x, &dz, ROWS, D_IN, &set, dw1.raw_mut(), Some(&mut dbias));
        #[allow(clippy::needless_range_loop)]
        for n in 0..H {
            let in_active = (8..12).contains(&n);
            let col_nonzero = dw1.col(n).iter().any(|&v| v != 0.0);
            assert_eq!(col_nonzero, in_active, "neuron {n}");
            assert_eq!(dbias[n] != 0.0, in_active, "bias {n}");
        }
        // Check one value against the naive sum.
        let n = 9;
        let t = n - 8;
        let mut expect = vec![0.0; D_IN];
        for r in 0..ROWS {
            let g = dz[r * width + t];
            for i in 0..D_IN {
                expect[i] += g * x[r * D_IN + i];
            }
        }
        assert_close(dw1.col(n), &expect, 1e-4);

        let dy = randn_vec(ROWS * D_OUT, 1.0, 18);
        let a = randn_vec(ROWS * width, 1.0, 19);
        let mut dw2 = vec![0.0; H * D_OUT];
        fc2_grad_weights(&a, &dy, ROWS, D_OUT, &set, &mut dw2);
        for n in 0..H {
            let in_active = (8..12).contains(&n);
            let row_nonzero = dw2[n * D_OUT..(n + 1) * D_OUT].iter().any(|&v| v != 0.0);
            assert_eq!(row_nonzero, in_active, "w2 row {n}");
        }
    }
}
