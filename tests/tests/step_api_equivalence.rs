//! Cross-crate equivalence proofs for the unified `StepRequest`/`StepOutcome`
//! execution API. The bit-identical reproductions of the *removed* legacy
//! entry points (`train_step`, `train_step_scaled`, `forward_planned`) live
//! inside `lx-model` (`crates/model/src/exec.rs`), where the private legacy
//! call sequences can still be spelled out; this suite proves the
//! composition laws visible from outside the crate:
//!
//! * `Mode::Train` ≡ `Mode::Grad` + a manual optimizer sweep, bit for bit;
//! * N-micro-batch accumulation ≡ one fused batch within f32 tolerance,
//!   through both the raw model API and the engine;
//! * evaluation reads exactly the loss a training step would have reported;
//! * `Mode::Score` ≡ candidate scoring through `score_parts`.

use long_exposure::engine::{EngineConfig, FinetuneEngine, StepMode};
use lx_integration::{batch_ids, tiny_model};
use lx_model::{
    prompt_aware_targets, score_parts, MicroBatch, Optimizer, Sgd, StepRequest, TransformerModel,
};
use lx_peft::PeftMethod;

const BATCH: usize = 2;
const SEQ: usize = 16;
const BLOCK: usize = 4;

fn lora_model(seed: u64) -> TransformerModel {
    let mut m = tiny_model(seed);
    PeftMethod::lora_default().apply(&mut m, seed + 1);
    m
}

fn sample(m: &TransformerModel, seed: u64) -> (Vec<u32>, Vec<i32>) {
    let ids = batch_ids(BATCH, SEQ, m.config.vocab_size, seed);
    let targets = prompt_aware_targets(&ids, BATCH, SEQ, 0);
    (ids, targets)
}

fn trainable_values(m: &mut TransformerModel) -> Vec<(String, Vec<f32>)> {
    let mut out = Vec::new();
    m.for_each_param(&mut |p| {
        if p.trainable {
            out.push((p.name.clone(), p.value.as_slice().to_vec()));
        }
    });
    out
}

#[test]
fn train_mode_is_grad_mode_plus_optimizer_bit_identically() {
    let mut fused = lora_model(3);
    let mut composed = lora_model(3);
    let mut opt_a = Sgd::new(0.05);
    let mut opt_b = Sgd::new(0.05);
    for step in 0..4u64 {
        let (ids, targets) = sample(&fused, 50 + step);
        let a = fused
            .execute(StepRequest::train(&ids, &targets, BATCH, SEQ, &mut opt_a))
            .loss;
        // The manual composition every custom update loop (e.g. the
        // data-parallel trainer) relies on.
        let b = composed
            .execute(StepRequest::grad(&ids, &targets, BATCH, SEQ))
            .loss;
        opt_b.begin_step();
        composed.for_each_param(&mut |p| opt_b.update(p));
        assert_eq!(a.to_bits(), b.to_bits(), "step {step} loss");
    }
    assert_eq!(
        trainable_values(&mut fused),
        trainable_values(&mut composed)
    );
}

#[test]
fn engine_accumulation_matches_one_fused_batch() {
    // Two micro-batches of BATCH rows against one fused batch of 2·BATCH
    // rows, dense mode (sparse plans are per-batch-content, so only the
    // dense path admits an exact fused counterpart). Losses and the
    // parameters after the single optimizer update must agree to f32
    // re-association tolerance.
    let engine_of = |seed| {
        FinetuneEngine::new(
            lora_model(seed),
            EngineConfig {
                block_size: BLOCK,
                ..EngineConfig::default()
            },
        )
    };
    let mut accum = engine_of(7);
    let mut fused = engine_of(7);
    let (ids_a, t_a) = sample(&accum.model, 70);
    let (ids_b, t_b) = sample(&accum.model, 71);
    let fused_ids: Vec<u32> = ids_a.iter().chain(&ids_b).copied().collect();
    let fused_t: Vec<i32> = t_a.iter().chain(&t_b).copied().collect();
    let mut opt_a = Sgd::new(0.05);
    let mut opt_b = Sgd::new(0.05);
    let micros = [
        MicroBatch {
            ids: &ids_a,
            targets: &t_a,
        },
        MicroBatch {
            ids: &ids_b,
            targets: &t_b,
        },
    ];
    let out_acc = accum.train_step_accum(&micros, BATCH, SEQ, &mut opt_a, StepMode::Dense);
    let out_fused = fused.train_step_mode(
        &fused_ids,
        &fused_t,
        2 * BATCH,
        SEQ,
        &mut opt_b,
        StepMode::Dense,
    );
    assert_eq!(out_acc.micro_batches, 2);
    assert!(
        (out_acc.loss - out_fused.loss).abs() <= 1e-5 * (1.0 + out_fused.loss.abs()),
        "losses: {} vs {}",
        out_acc.loss,
        out_fused.loss
    );
    let pa = trainable_values(&mut accum.model);
    let pf = trainable_values(&mut fused.model);
    assert_eq!(pa.len(), pf.len());
    for ((name, a), (_, f)) in pa.iter().zip(&pf) {
        for (x, y) in a.iter().zip(f) {
            assert!(
                (x - y).abs() <= 1e-5 * (1.0 + y.abs()),
                "{name}: accumulated update {x} vs fused {y}"
            );
        }
    }
}

#[test]
fn sparse_accumulation_trains_and_replans_per_micro_batch() {
    let mut engine = FinetuneEngine::new(
        lora_model(9),
        EngineConfig {
            block_size: BLOCK,
            predictor_rank: 4,
            calib_epochs: 40,
            attn_prob_threshold: 8.0 / SEQ as f32,
            ..EngineConfig::default()
        },
    );
    let calib = sample(&engine.model, 90);
    engine.calibrate(&[(calib.0, BATCH, SEQ)]);
    let (ids_a, t_a) = sample(&engine.model, 91);
    let (ids_b, t_b) = sample(&engine.model, 92);
    let micros = [
        MicroBatch {
            ids: &ids_a,
            targets: &t_a,
        },
        MicroBatch {
            ids: &ids_b,
            targets: &t_b,
        },
    ];
    let mut opt = Sgd::new(0.05);
    let first = engine.train_step_accum(&micros, BATCH, SEQ, &mut opt, StepMode::Sparse);
    assert_eq!(first.micro_batches, 2);
    assert!(first.attn_density.unwrap() <= 1.0);
    assert!(first.mlp_density.unwrap() <= 1.0);
    let mut last = first.loss;
    for _ in 0..8 {
        last = engine
            .train_step_accum(&micros, BATCH, SEQ, &mut opt, StepMode::Sparse)
            .loss;
    }
    assert!(
        last < first.loss,
        "accumulated sparse training must reduce loss: {} -> {last}",
        first.loss
    );
}

#[test]
fn eval_reports_exactly_the_loss_a_train_step_would() {
    // Loss is computed before the update, so on identical state the eval
    // pass and the training step must report bit-identical losses.
    let mut trained = lora_model(11);
    let mut evaluated = lora_model(11);
    let (ids, targets) = sample(&trained, 110);
    let eval_loss = evaluated
        .execute(StepRequest::eval(&ids, &targets, BATCH, SEQ))
        .loss;
    let mut opt = Sgd::new(0.05);
    let train_loss = trained
        .execute(StepRequest::train(&ids, &targets, BATCH, SEQ, &mut opt))
        .loss;
    assert_eq!(eval_loss.to_bits(), train_loss.to_bits());
}

#[test]
fn score_mode_orders_candidates_like_eval_losses() {
    // Mode::Score sums log-probabilities over the continuation rows; a
    // higher score must correspond to a lower targeted eval loss.
    let mut m = lora_model(13);
    let mut opt = Sgd::new(0.1);
    let ids: Vec<u32> = (1..=SEQ as u32).collect();
    let targets = prompt_aware_targets(&ids, 1, SEQ, 0);
    for _ in 0..20 {
        m.execute(StepRequest::train(&ids, &targets, 1, SEQ, &mut opt));
    }
    let prompt: Vec<u32> = ids[..4].to_vec();
    let trained_cont: Vec<u32> = ids[4..8].to_vec();
    let wrong_cont: Vec<u32> = vec![40, 41, 42, 43];
    let score = |m: &mut TransformerModel, cont: &[u32]| {
        let (sids, stargets) = score_parts(&prompt, cont, 0);
        m.execute(StepRequest::score(&sids, &stargets, 1, sids.len()))
            .loss
    };
    let good = score(&mut m, &trained_cont);
    let bad = score(&mut m, &wrong_cont);
    assert!(
        good > bad,
        "trained continuation must score higher: {good} vs {bad}"
    );
}
