//! Offline stand-in for the subset of the `rand` crate this workspace uses.
//!
//! The build environment has no access to crates.io, so this shim provides
//! API-compatible `StdRng` / `Rng` / `SeedableRng` / `Uniform` /
//! `SliceRandom` surfaces backed by xoshiro256++ (seeded through SplitMix64).
//! Streams are deterministic for a given seed but do **not** match upstream
//! `rand` byte-for-byte; everything in this repo treats seeds as opaque.

use std::ops::{Range, RangeInclusive};

/// Minimal core trait: a source of uniform 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a `u64` seed (the only constructor this repo uses).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable uniformly from the type's "standard" distribution:
/// `[0, 1)` for floats, full range for integers, fair coin for `bool`.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 mantissa-ish bits -> [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// The user-facing sampling trait (`rand::Rng`).
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p must be in [0,1]");
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ seeded via SplitMix64 — fast, solid statistical quality.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod distributions {
    use super::RngCore;

    /// A distribution that can be sampled with any RNG.
    pub trait Distribution<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Types `Uniform` can sample (floats only in this shim).
    pub trait SampleUniform: Copy + PartialOrd {
        fn lerp_unit<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    }

    macro_rules! uniform_float {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn lerp_unit<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                    use super::Standard;
                    lo + (hi - lo) * <$t as Standard>::sample_standard(rng)
                }
            }
        )*};
    }

    uniform_float!(f32, f64);

    /// Uniform distribution over `[lo, hi)`.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        lo: T,
        hi: T,
    }

    impl<T: SampleUniform> Uniform<T> {
        pub fn new(lo: T, hi: T) -> Self {
            assert!(lo < hi, "Uniform::new requires lo < hi");
            Uniform { lo, hi }
        }
    }

    impl<T: SampleUniform> Distribution<T> for Uniform<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            T::lerp_unit(self.lo, self.hi, rng)
        }
    }
}

pub mod seq {
    use super::RngCore;

    /// Slice shuffling (Fisher–Yates), matching `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5u32..=9);
            assert!((5..=9).contains(&w));
            let f = rng.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "{frac}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use super::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
    }
}
