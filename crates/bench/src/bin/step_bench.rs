//! Steady-state training-step benchmark for the cross-step reuse layer:
//! per-step wall time, heap-tensor allocation counts (via the `memtrack`
//! fresh-allocation counters), workspace hit rates, and the predict-time
//! amortisation of plan reuse (`PlanRefreshConfig`).
//!
//! Tables:
//! 1. **steady state** — dense and sparse steps after warmup: mean step
//!    time, predict share, allocations per steady-state step (must be 0),
//!    workspace hits/misses.
//! 2. **plan reuse** — identical calibrated engines run 24 identical steps
//!    with every-step prediction vs a reuse interval: total predict time,
//!    f16 slab blocks decoded, the predict-time ratio (`reuse speedup`) and
//!    the worst per-step loss deviation between the arms.
//!
//! Flags:
//! * `--smoke` — tiny model; gates on **zero steady-state allocations**
//!   (dense + sparse), reuse actually reducing predict time, the reuse
//!   arm's loss curve staying within 0.05 of every-step prediction, and the
//!   disabled-instrumentation overhead estimate staying under 1% of a step.
//!   Exits non-zero on violation (the CI gate).
//! * `--json` — write `BENCH_step_bench.json`.
//! * `--trace <path>` — record the plan-reuse arms in an `lx-obs` trace
//!   session and write a Chrome trace-event JSON (Perfetto-loadable).
//! * `--compare <baseline.json>` / `--tolerance <frac>` — gate the
//!   `reuse speedup` column against a committed baseline
//!   (see `ci/baselines/step_bench.json`).

use long_exposure::engine::StepMode;
use long_exposure::PlanRefreshConfig;
use lx_bench::{calibrated_engine, default_opt, header, load_bench_json, row, BenchCli};
use lx_model::{prompt_aware_targets, ModelConfig, Precision};
use lx_obs::{inert_span_cost_ns, registry, Histogram, TraceSession};
use lx_peft::PeftMethod;
use lx_tensor::memtrack;
use std::path::PathBuf;
use std::time::{Duration, Instant};

// Three, not two: the workspace pool needs to see every slab-gather width
// the drifting plan produces before allocations reach zero, and the 2:4
// backbone's plans take one drift longer to cover their widths than f16's.
const WARMUP: usize = 3;
const REUSE_STEPS: usize = 24;

fn fmt_ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

struct SteadyState {
    mode: &'static str,
    step_ms: f64,
    p50_ms: f64,
    p99_ms: f64,
    predict_share: f64,
    allocs_per_step: f64,
    hits: u64,
    misses: u64,
}

/// Run `WARMUP` untimed steps, then `measured` steps with the allocation
/// counters marked, in one mode.
fn steady_state(
    cfg: ModelConfig,
    precision: Precision,
    batch: usize,
    seq: usize,
    mode: StepMode,
    label: &'static str,
    measured: usize,
) -> SteadyState {
    let (mut engine, mut batcher) =
        calibrated_engine(cfg, PeftMethod::lora_default(), batch, seq, 42);
    engine.model.set_precision(precision);
    let mut opt = default_opt();
    let prompt = engine.model.embedding.prompt_len();
    let mut run = |engine: &mut long_exposure::FinetuneEngine, batcher: &mut lx_data::Batcher| {
        let ids = batcher.next_batch(batch, seq);
        let targets = prompt_aware_targets(&ids, batch, seq, prompt);
        engine.train_step_mode(&ids, &targets, batch, seq, &mut opt, mode)
    };
    for _ in 0..WARMUP {
        run(&mut engine, &mut batcher);
    }
    let mark = memtrack::alloc_stats();
    let t0 = Instant::now();
    let mut predict = Duration::ZERO;
    // Per-step latencies feed a log-bucketed histogram so the --json report
    // carries p50/p99, not just the mean (tail steps hide behind a mean).
    let lat = Histogram::new();
    for _ in 0..measured {
        let t_step = Instant::now();
        let out = run(&mut engine, &mut batcher);
        lat.record_duration(t_step.elapsed());
        predict += out.predict;
    }
    let wall = t0.elapsed();
    let allocs = memtrack::alloc_stats().since(&mark);
    let ws = engine.model.workspace_stats();
    SteadyState {
        mode: label,
        step_ms: wall.as_secs_f64() * 1e3 / measured as f64,
        p50_ms: lat.p50() as f64 / 1e6,
        p99_ms: lat.p99() as f64 / 1e6,
        predict_share: predict.as_secs_f64() / wall.as_secs_f64().max(1e-12),
        allocs_per_step: allocs.count as f64 / measured as f64,
        hits: ws.hits,
        misses: ws.misses,
    }
}

/// Estimate the cost of the *disabled* instrumentation on one steady-state
/// sparse step: count the span/counter operations a traced step performs,
/// multiply by the measured inert-path cost of one operation, and express it
/// as a fraction of the measured step time. Must run while no trace session
/// is active (the whole point is the inert path).
struct OverheadEstimate {
    span_cost_ns: f64,
    ops_per_step: u64,
    fraction: f64,
}

fn overhead_estimate(
    cfg: ModelConfig,
    precision: Precision,
    batch: usize,
    seq: usize,
    step_ms: f64,
) -> OverheadEstimate {
    let span_cost_ns = inert_span_cost_ns(200_000);
    let (mut engine, mut batcher) =
        calibrated_engine(cfg, PeftMethod::lora_default(), batch, seq, 42);
    engine.model.set_precision(precision);
    let mut opt = default_opt();
    let prompt = engine.model.embedding.prompt_len();
    let mut run = |engine: &mut long_exposure::FinetuneEngine, batcher: &mut lx_data::Batcher| {
        let ids = batcher.next_batch(batch, seq);
        let targets = prompt_aware_targets(&ids, batch, seq, prompt);
        engine.train_step_mode(&ids, &targets, batch, seq, &mut opt, StepMode::Sparse);
    };
    for _ in 0..WARMUP {
        run(&mut engine, &mut batcher);
    }
    let counter_total = || -> u64 { registry().counters().iter().map(|(_, v)| v).sum() };
    let counters_before = counter_total();
    let session = TraceSession::start().expect("overhead probe needs the trace ring");
    run(&mut engine, &mut batcher);
    let trace = session.finish();
    let counter_ops = counter_total().saturating_sub(counters_before);
    // Spans + counter bumps + the always-on step histogram record. A counter
    // bump (one relaxed atomic add) costs no more than an inert span check,
    // so pricing every operation at `span_cost_ns` is conservative.
    let ops_per_step = trace.records.len() as u64 + counter_ops + 1;
    OverheadEstimate {
        span_cost_ns,
        ops_per_step,
        fraction: ops_per_step as f64 * span_cost_ns / (step_ms * 1e6).max(1.0),
    }
}

struct ReuseArm {
    predict: Duration,
    decoded: u64,
    losses: Vec<f32>,
    predicted_steps: u64,
    reused_steps: u64,
}

/// 24 identical sparse steps with the given refresh interval, from an
/// identically-seeded calibrated engine (so the arms see the same data).
fn reuse_arm(
    cfg: ModelConfig,
    precision: Precision,
    batch: usize,
    seq: usize,
    interval: usize,
) -> ReuseArm {
    let (mut engine, mut batcher) =
        calibrated_engine(cfg, PeftMethod::lora_default(), batch, seq, 42);
    engine.model.set_precision(precision);
    engine.set_plan_refresh(PlanRefreshConfig {
        interval,
        min_overlap: 0.0,
    });
    let mut opt = default_opt();
    let prompt = engine.model.embedding.prompt_len();
    let mut predict = Duration::ZERO;
    let mut losses = Vec::with_capacity(REUSE_STEPS);
    for _ in 0..REUSE_STEPS {
        let ids = batcher.next_batch(batch, seq);
        let targets = prompt_aware_targets(&ids, batch, seq, prompt);
        let out = engine.train_step_mode(&ids, &targets, batch, seq, &mut opt, StepMode::Sparse);
        predict += out.predict;
        losses.push(out.loss);
    }
    let (decoded, _) = engine.model.slab_cache_stats();
    let stats = engine.plan_reuse_stats();
    ReuseArm {
        predict,
        decoded,
        losses,
        predicted_steps: stats.predicted_steps,
        reused_steps: stats.reused_steps,
    }
}

fn main() {
    let cli = BenchCli::parse("step_bench");
    let smoke = cli.smoke;
    lx_runtime::kernel_policy::install_tuned();
    let precision = cli.precision();
    let (cfg, batch, seq, measured) = if smoke {
        (ModelConfig::test_tiny(), 2, 32, 8)
    } else {
        (ModelConfig::opt_sim_small(), 2, 256, 8)
    };
    println!(
        "== step_bench: steady-state reuse ({}, batch {batch}, seq {seq}, warmup {WARMUP}{}) ==\n",
        cfg.name,
        if smoke { ", smoke" } else { "" }
    );

    header(&[
        "mode",
        "step ms",
        "p50 ms",
        "p99 ms",
        "predict share",
        "allocs/step",
        "ws hits",
        "ws misses",
    ]);
    // The nm24 row is the compound-speedup probe: activation sparsity (the
    // sparse plan) stacked on weight sparsity (the 2:4 backbone, packed
    // straight from compacted storage) in one training step.
    let arms = [
        ("dense", StepMode::Dense, precision),
        ("sparse", StepMode::Sparse, precision),
        ("sparse nm24", StepMode::Sparse, Precision::Nm24Frozen),
    ];
    let mut steady = Vec::new();
    for (label, mode, precision) in arms {
        let s = steady_state(cfg.clone(), precision, batch, seq, mode, label, measured);
        row(&[
            s.mode.to_string(),
            format!("{:.2}", s.step_ms),
            format!("{:.2}", s.p50_ms),
            format!("{:.2}", s.p99_ms),
            format!("{:.1}%", s.predict_share * 100.0),
            format!("{:.2}", s.allocs_per_step),
            s.hits.to_string(),
            s.misses.to_string(),
        ]);
        steady.push(s);
    }

    // The inert-path probe must run before any --trace session activates the
    // ring (it measures the disabled path); its table is emitted after the
    // reuse table so baseline table indices stay stable.
    let overhead =
        smoke.then(|| overhead_estimate(cfg.clone(), precision, batch, seq, steady[1].step_ms));

    let trace_path = cli.value("--trace").map(PathBuf::from);
    let trace_session = trace_path
        .as_ref()
        .map(|_| TraceSession::start().expect("step_bench --trace: session already active"));

    println!();
    header(&[
        "arm",
        "predicted",
        "reused",
        "predict ms",
        "slabs decoded",
        "reuse speedup",
        "max loss dev",
    ]);
    // One arm pair per backbone storage plan: the CLI precision and the 2:4
    // backbone (whose slab decodes come from compacted nm storage). Both
    // speedup rows regression-gate via `--compare`.
    let mut reuse_pairs = Vec::new();
    for (suffix, arm_precision) in [("", precision), (" nm24", Precision::Nm24Frozen)] {
        let every = reuse_arm(cfg.clone(), arm_precision, batch, seq, 1);
        let reused = reuse_arm(cfg.clone(), arm_precision, batch, seq, 4);
        let max_dev = every
            .losses
            .iter()
            .zip(&reused.losses)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        let speedup = every.predict.as_secs_f64() / reused.predict.as_secs_f64().max(1e-12);
        row(&[
            format!("predict every step{suffix}"),
            every.predicted_steps.to_string(),
            every.reused_steps.to_string(),
            fmt_ms(every.predict),
            every.decoded.to_string(),
            "1.00x".into(),
            "0.000".into(),
        ]);
        row(&[
            format!("reuse interval 4{suffix}"),
            reused.predicted_steps.to_string(),
            reused.reused_steps.to_string(),
            fmt_ms(reused.predict),
            reused.decoded.to_string(),
            format!("{speedup:.2}x"),
            format!("{max_dev:.3}"),
        ]);
        reuse_pairs.push((suffix, every, reused, max_dev));
    }
    if let Some(est) = &overhead {
        println!();
        header(&["instrumentation", "span cost ns", "ops/step", "overhead"]);
        row(&[
            "disabled-path estimate".into(),
            format!("{:.1}", est.span_cost_ns),
            est.ops_per_step.to_string(),
            format!("{:.3}%", est.fraction * 100.0),
        ]);
    }
    if let (Some(session), Some(path)) = (trace_session, trace_path.as_ref()) {
        let trace = session.finish();
        match trace.write_chrome(path) {
            Ok(()) => println!(
                "\nwrote Chrome trace to {} ({} spans, {} dropped) — load in Perfetto",
                path.display(),
                trace.records.len(),
                trace.dropped
            ),
            Err(e) => eprintln!(
                "\nstep_bench: failed to write trace {}: {e}",
                path.display()
            ),
        }
        println!("{}", trace.summary());
    }

    println!(
        "\nshape to check: allocs/step is 0 after warmup in both modes; plan reuse cuts \
         predict time and slab decodes while the loss curve stays within 0.05."
    );
    cli.finish();

    let mut gate_failed = false;
    if let Some(path) = cli.value("--compare") {
        let tolerance = cli
            .value("--tolerance")
            .map(|t| {
                t.parse::<f64>()
                    .expect("--tolerance takes a fraction, e.g. 0.6")
            })
            .unwrap_or(0.6);
        match load_bench_json(std::path::Path::new(&path)) {
            Ok(baseline) => {
                let (checked, regressions) =
                    lx_bench::compare_to_baseline(&baseline, "reuse speedup", tolerance);
                println!(
                    "\nbench-regression gate vs {path}: {} comparisons at {:.0}% tolerance",
                    checked.len(),
                    tolerance * 100.0
                );
                for line in &checked {
                    println!("  {line}");
                }
                for line in &regressions {
                    eprintln!("  REGRESSION {line}");
                }
                if checked.is_empty() && regressions.is_empty() {
                    eprintln!("step_bench: baseline matched no rows — wrong file?");
                    gate_failed = true;
                }
                gate_failed |= !regressions.is_empty();
            }
            Err(e) => {
                eprintln!("step_bench: cannot load baseline: {e}");
                gate_failed = true;
            }
        }
    }
    if smoke {
        for s in &steady {
            if s.allocs_per_step > 0.0 {
                eprintln!(
                    "step_bench: {} steady state allocated {:.2} heap tensors/step (expected 0)",
                    s.mode, s.allocs_per_step
                );
                gate_failed = true;
            }
        }
        for (suffix, every, reused, max_dev) in &reuse_pairs {
            if reused.predict >= every.predict {
                eprintln!(
                    "step_bench: plan reuse{suffix} did not reduce predict time ({:?} vs {:?})",
                    reused.predict, every.predict
                );
                gate_failed = true;
            }
            if reused.decoded > every.decoded {
                eprintln!(
                    "step_bench: plan reuse{suffix} decoded more slabs ({} vs {})",
                    reused.decoded, every.decoded
                );
                gate_failed = true;
            }
            if *max_dev > 0.05 {
                eprintln!("step_bench: reuse{suffix} loss curve deviated by {max_dev} (> 0.05)");
                gate_failed = true;
            }
        }
        if let Some(est) = &overhead {
            if est.fraction >= 0.01 {
                eprintln!(
                    "step_bench: disabled instrumentation estimated at {:.3}% of a step (gate: <1%)",
                    est.fraction * 100.0
                );
                gate_failed = true;
            }
        }
    }
    if gate_failed {
        std::process::exit(1);
    }
}
