//! Trainable parameter: a tensor, its (lazily allocated) gradient, and a
//! trainability flag. PEFT methods work by flipping these flags and adding
//! small extra parameters — exactly the paper's Table I setting.
//!
//! Storage precision: a parameter normally holds its values in [`value`]
//! (f32). Under [`Precision::F16Frozen`](crate::Precision) frozen backbone
//! matrices are *demoted* to half storage ([`Param::to_half`]): the f16 bits
//! live in [`half`], [`value`] becomes an empty placeholder, and the compute
//! paths consume the bits through the fused f16-input GEMMs (or decode rows
//! on load). The block-quantized plans (`Int8Frozen`/`Nf4Frozen`) follow the
//! same pattern through [`quant`] and [`Param::to_quant`], with the fused
//! quantized-B GEMMs dequantizing inside their pack stage, and the N:M
//! structured-sparse plan (`Nm24Frozen`) through [`nm`] and [`Param::to_nm`],
//! whose fused GEMMs additionally skip all-zero weight groups at pack time.
//! Trainable parameters are never reduced-stored — gradients and optimizer
//! state stay f32, as the paper's mixed-precision recipe requires.
//!
//! [`value`]: Param::value
//! [`half`]: Param::half
//! [`quant`]: Param::quant
//! [`nm`]: Param::nm

use lx_tensor::f16::f16_bits_to_f32;
use lx_tensor::gemm::{
    matmul, matmul_ep, matmul_f16, matmul_f16_ep, matmul_nm, matmul_nm_ep, matmul_nt, matmul_nt_ep,
    matmul_nt_f16, matmul_nt_f16_ep, matmul_nt_nm, matmul_nt_nm_ep, matmul_nt_quant,
    matmul_nt_quant_ep, matmul_quant, matmul_quant_ep, Epilogue,
};
use lx_tensor::{Dtype, HalfTensor, NmTensor, QuantTensor, Tensor};

/// A named model parameter.
#[derive(Debug)]
pub struct Param {
    pub name: String,
    /// f32 storage. Empty (`len() == 0`) while the parameter is
    /// reduced-stored.
    pub value: Tensor,
    /// Half-precision storage; `Some` only for frozen parameters demoted by
    /// [`Param::to_half`]. Holds the authoritative shape while present.
    pub half: Option<HalfTensor>,
    /// Block-quantized storage (int8 or NF4); `Some` only for frozen
    /// parameters demoted by [`Param::to_quant`]. Mutually exclusive with
    /// [`half`](Param::half).
    pub quant: Option<QuantTensor>,
    /// N:M structured-sparse storage (2:4); `Some` only for frozen
    /// parameters demoted by [`Param::to_nm`]. Unlike [`half`](Param::half)
    /// and [`quant`](Param::quant) the codec is lossless on the surviving
    /// values — demotion prunes (irreversibly zeroes the smaller half of
    /// each 4-group), but every later decode is bit-exact. Mutually
    /// exclusive with the other reduced storages.
    pub nm: Option<NmTensor>,
    /// Allocated on first accumulation; `None` for frozen params that never
    /// received a gradient (saving the optimizer-state memory PEFT avoids).
    pub grad: Option<Tensor>,
    pub trainable: bool,
}

impl Param {
    pub fn new(name: impl Into<String>, value: Tensor, trainable: bool) -> Self {
        Param {
            name: name.into(),
            value,
            half: None,
            quant: None,
            nm: None,
            grad: None,
            trainable,
        }
    }

    /// Frozen parameter (the pre-trained backbone default under PEFT).
    pub fn frozen(name: impl Into<String>, value: Tensor) -> Self {
        Self::new(name, value, false)
    }

    pub fn numel(&self) -> usize {
        match (&self.half, &self.quant, &self.nm) {
            (Some(h), _, _) => h.len(),
            (_, Some(q), _) => q.len(),
            (_, _, Some(s)) => s.len(),
            _ => self.value.len(),
        }
    }

    /// Logical shape, whichever storage holds the values.
    pub fn shape(&self) -> &[usize] {
        match (&self.half, &self.quant, &self.nm) {
            (Some(h), _, _) => h.shape(),
            (_, Some(q), _) => q.shape(),
            (_, _, Some(s)) => s.shape(),
            _ => self.value.shape(),
        }
    }

    /// Storage precision of this parameter right now.
    pub fn dtype(&self) -> Dtype {
        match (&self.half, &self.quant, &self.nm) {
            (Some(_), _, _) => Dtype::F16,
            (_, Some(q), _) => q.dtype(),
            (_, _, Some(s)) => s.dtype(),
            _ => Dtype::F32,
        }
    }

    pub fn is_half(&self) -> bool {
        self.half.is_some()
    }

    pub fn is_quant(&self) -> bool {
        self.quant.is_some()
    }

    pub fn is_nm(&self) -> bool {
        self.nm.is_some()
    }

    /// Whether the values live in any reduced storage (f16, block-quantized,
    /// or N:M structured-sparse) rather than f32.
    pub fn is_reduced(&self) -> bool {
        self.half.is_some() || self.quant.is_some() || self.nm.is_some()
    }

    /// Bytes occupied by the value storage (excludes any gradient). Reports
    /// the actual storage's footprint — for the block-quantized dtypes that
    /// includes the per-block scales, matching [`Dtype::bytes_for`].
    pub fn storage_bytes(&self) -> usize {
        match (&self.half, &self.quant, &self.nm) {
            (Some(h), _, _) => h.bytes(),
            (_, Some(q), _) => q.bytes(),
            (_, _, Some(s)) => s.bytes(),
            _ => self.value.len() * Dtype::F32.size_bytes(),
        }
    }

    /// Demote to half storage (round-to-nearest-even). No-op when already
    /// half; a quantized parameter is decoded first. Panics for trainable
    /// parameters: the optimizer updates `value` in place, so trainable
    /// state must stay f32.
    pub fn to_half(&mut self) {
        if self.half.is_some() {
            return;
        }
        assert!(
            !self.trainable,
            "{}: trainable parameters must stay f32 (demote only frozen backbone weights)",
            self.name
        );
        self.to_f32();
        let h = HalfTensor::from_tensor(&self.value);
        self.value = Tensor::zeros(&[0]);
        self.half = Some(h);
    }

    /// Demote to block-quantized storage (`dtype` ∈
    /// {[`Dtype::I8Block`], [`Dtype::Nf4Block`]}). No-op when already stored
    /// at that dtype; any other reduced storage is decoded first. Panics for
    /// trainable parameters, like [`to_half`](Self::to_half).
    pub fn to_quant(&mut self, dtype: Dtype) {
        if self.quant.as_ref().map(|q| q.dtype()) == Some(dtype) {
            return;
        }
        assert!(
            !self.trainable,
            "{}: trainable parameters must stay f32 (demote only frozen backbone weights)",
            self.name
        );
        self.to_f32();
        let q = QuantTensor::from_tensor(&self.value, dtype);
        self.value = Tensor::zeros(&[0]);
        self.quant = Some(q);
    }

    /// Demote to N:M structured-sparse storage ([`Dtype::Nm24`]): magnitude-
    /// prune each 4-group to its 2 largest values, then store the survivors
    /// compacted. No-op when already N:M-stored; any other reduced storage
    /// is decoded first. Panics for trainable parameters, like
    /// [`to_half`](Self::to_half). Unlike the other demotions this one is
    /// *lossy at demotion time only*: the pruned positions are gone, but the
    /// surviving values — and thus every later decode or GEMM — are bit-exact.
    pub fn to_nm(&mut self) {
        if self.nm.is_some() {
            return;
        }
        assert!(
            !self.trainable,
            "{}: trainable parameters must stay f32 (demote only frozen backbone weights)",
            self.name
        );
        self.to_f32();
        let s = NmTensor::from_tensor(&self.value, Dtype::Nm24);
        self.value = Tensor::zeros(&[0]);
        self.nm = Some(s);
    }

    /// [`to_nm`](Self::to_nm) with an externally supplied group mask
    /// (`lx_quant::nm` layout) instead of magnitude pruning — how a
    /// calibration-derived or merge-preserved sparsity pattern is installed.
    pub fn to_nm_with_mask(&mut self, masks: &[u8]) {
        assert!(
            !self.trainable,
            "{}: trainable parameters must stay f32 (demote only frozen backbone weights)",
            self.name
        );
        self.to_f32();
        let shape = self.value.shape().to_vec();
        let s = NmTensor::from_f32_with_mask(self.value.as_slice(), &shape, masks);
        self.value = Tensor::zeros(&[0]);
        self.nm = Some(s);
    }

    /// Promote back to f32 storage (exact decode of whatever reduced storage
    /// is present). No-op when already f32.
    pub fn to_f32(&mut self) {
        if let Some(h) = self.half.take() {
            self.value = h.to_tensor();
        }
        if let Some(q) = self.quant.take() {
            self.value = q.to_tensor();
        }
        if let Some(s) = self.nm.take() {
            self.value = s.to_tensor();
        }
    }

    /// `x · W` on the trailing-2-D view of the value, fused-decoding when
    /// reduced-stored. This is the forward hot path for frozen weights.
    pub fn matmul(&self, x: &Tensor) -> Tensor {
        match (&self.half, &self.quant, &self.nm) {
            (Some(h), _, _) => matmul_f16(x, h),
            (_, Some(q), _) => matmul_quant(x, q),
            (_, _, Some(s)) => matmul_nm(x, s),
            _ => matmul(x, &self.value),
        }
    }

    /// `x · Wᵀ`, fused-decoding when reduced-stored (the `dx` backward shape
    /// and the `x·Aᵀ`-style forward shape).
    pub fn matmul_nt(&self, x: &Tensor) -> Tensor {
        match (&self.half, &self.quant, &self.nm) {
            (Some(h), _, _) => matmul_nt_f16(x, h),
            (_, Some(q), _) => matmul_nt_quant(x, q),
            (_, _, Some(s)) => matmul_nt_nm(x, s),
            _ => matmul_nt(x, &self.value),
        }
    }

    /// [`matmul`](Self::matmul) with a fused [`Epilogue`] applied at kernel
    /// write-back, whatever the storage dtype. Bit-identical to the unfused
    /// matmul followed by the equivalent bias/activation passes.
    pub fn matmul_ep(&self, x: &Tensor, ep: Epilogue<'_>) -> Tensor {
        match (&self.half, &self.quant, &self.nm) {
            (Some(h), _, _) => matmul_f16_ep(x, h, ep),
            (_, Some(q), _) => matmul_quant_ep(x, q, ep),
            (_, _, Some(s)) => matmul_nm_ep(x, s, ep),
            _ => matmul_ep(x, &self.value, ep),
        }
    }

    /// [`matmul_nt`](Self::matmul_nt) with a fused [`Epilogue`].
    pub fn matmul_nt_ep(&self, x: &Tensor, ep: Epilogue<'_>) -> Tensor {
        match (&self.half, &self.quant, &self.nm) {
            (Some(h), _, _) => matmul_nt_f16_ep(x, h, ep),
            (_, Some(q), _) => matmul_nt_quant_ep(x, q, ep),
            (_, _, Some(s)) => matmul_nt_nm_ep(x, s, ep),
            _ => matmul_nt_ep(x, &self.value, ep),
        }
    }

    /// Decode rows `[r0, r0 + n_rows)` of the 2-D view into `out`
    /// (`n_rows × cols`, contiguous), whatever the storage. This is the
    /// active-neuron-slab gather: for the quantized dtypes the decode is
    /// elementwise, so a slab window is bit-identical to the same rows of a
    /// full decode.
    pub fn decode_rows(&self, r0: usize, n_rows: usize, out: &mut [f32]) {
        match (&self.half, &self.quant, &self.nm) {
            (Some(h), _, _) => h.decode_rows(r0, n_rows, out),
            (_, Some(q), _) => q.decode_rows(r0, n_rows, out),
            (_, _, Some(s)) => s.decode_rows(r0, n_rows, out),
            _ => {
                let c = *self.shape().last().unwrap_or(&0);
                out.copy_from_slice(&self.value.as_slice()[r0 * c..(r0 + n_rows) * c]);
            }
        }
    }

    /// Copy row `r` of the 2-D view into `out`, decoding if reduced-stored
    /// (embedding-table lookups).
    pub fn copy_row_into(&self, r: usize, out: &mut [f32]) {
        let c = *self.shape().last().unwrap_or(&0);
        debug_assert_eq!(out.len(), c, "{}: row width", self.name);
        match (&self.half, &self.quant, &self.nm) {
            (Some(h), _, _) => h.decode_rows(r, 1, out),
            (_, Some(q), _) => q.decode_rows(r, 1, out),
            (_, _, Some(s)) => s.decode_rows(r, 1, out),
            _ => out.copy_from_slice(&self.value.as_slice()[r * c..(r + 1) * c]),
        }
    }

    /// Add row `r` of the 2-D view into `out`, decoding if reduced-stored
    /// (positional-embedding accumulation).
    pub fn add_row_into(&self, r: usize, out: &mut [f32]) {
        let c = *self.shape().last().unwrap_or(&0);
        debug_assert_eq!(out.len(), c, "{}: row width", self.name);
        match (&self.half, &self.quant, &self.nm) {
            (Some(h), _, _) => {
                for (o, &b) in out.iter_mut().zip(h.row_bits(r)) {
                    *o += f16_bits_to_f32(b);
                }
            }
            (_, Some(q), _) => {
                let view = q.view();
                let base = r * c;
                for (j, o) in out.iter_mut().enumerate() {
                    *o += view.get(base + j);
                }
            }
            (_, _, Some(s)) => {
                let view = s.view();
                let base = r * c;
                for (j, o) in out.iter_mut().enumerate() {
                    *o += view.get(base + j);
                }
            }
            _ => {
                for (o, v) in out
                    .iter_mut()
                    .zip(&self.value.as_slice()[r * c..(r + 1) * c])
                {
                    *o += v;
                }
            }
        }
    }

    /// Accumulate a gradient tensor (allocates on first use).
    pub fn accumulate_grad(&mut self, grad: &Tensor) {
        match &mut self.grad {
            Some(g) => g.add_assign(grad),
            None => self.grad = Some(grad.clone()),
        }
    }

    /// Mutable access to the gradient buffer, allocating zeros if absent.
    pub fn grad_mut(&mut self) -> &mut Tensor {
        if self.grad.is_none() {
            self.grad = Some(Tensor::zeros(self.shape()));
        }
        self.grad.as_mut().unwrap()
    }

    /// Zero the gradient in place (keeps the allocation).
    pub fn zero_grad(&mut self) {
        if let Some(g) = &mut self.grad {
            g.zero_();
        }
    }

    /// Drop the gradient allocation entirely.
    pub fn clear_grad(&mut self) {
        self.grad = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate_allocates_then_adds() {
        let mut p = Param::new("w", Tensor::zeros(&[2, 2]), true);
        assert!(p.grad.is_none());
        let g = Tensor::full(&[2, 2], 1.0);
        p.accumulate_grad(&g);
        p.accumulate_grad(&g);
        assert_eq!(p.grad.as_ref().unwrap().as_slice(), &[2.0; 4]);
    }

    #[test]
    fn zero_keeps_allocation_clear_drops_it() {
        let mut p = Param::new("w", Tensor::zeros(&[3]), true);
        p.grad_mut().as_mut_slice()[0] = 5.0;
        p.zero_grad();
        assert_eq!(p.grad.as_ref().unwrap().as_slice(), &[0.0; 3]);
        p.clear_grad();
        assert!(p.grad.is_none());
    }

    #[test]
    fn frozen_constructor() {
        let p = Param::frozen("emb", Tensor::zeros(&[4]));
        assert!(!p.trainable);
        assert_eq!(p.numel(), 4);
        assert_eq!(p.dtype(), Dtype::F32);
    }

    #[test]
    fn half_roundtrip_preserves_shape_and_counts() {
        let mut p = Param::frozen("w", Tensor::randn(&[8, 6], 1.0, 3));
        let before = p.value.clone();
        assert_eq!(p.storage_bytes(), 8 * 6 * 4);
        p.to_half();
        assert!(p.is_half());
        assert!(p.is_reduced());
        assert_eq!(p.numel(), 48);
        assert_eq!(p.shape(), &[8, 6]);
        assert_eq!(p.storage_bytes(), 8 * 6 * 2);
        assert_eq!(p.value.len(), 0, "f32 buffer must be released");
        p.to_f32();
        assert!(!p.is_half());
        // Values round-tripped through f16 rounding.
        for (a, b) in p.value.as_slice().iter().zip(before.as_slice()) {
            assert!((a - b).abs() <= b.abs() * 1e-3 + 1e-7, "{a} vs {b}");
        }
    }

    #[test]
    fn quant_roundtrip_preserves_shape_and_counts() {
        for dtype in [Dtype::I8Block, Dtype::Nf4Block] {
            let mut p = Param::frozen("w", Tensor::randn(&[8, 6], 1.0, 4));
            let before = p.value.clone();
            p.to_quant(dtype);
            assert!(p.is_quant());
            assert!(p.is_reduced());
            assert!(!p.is_half());
            assert_eq!(p.dtype(), dtype);
            assert_eq!(p.numel(), 48);
            assert_eq!(p.shape(), &[8, 6]);
            assert_eq!(p.storage_bytes(), dtype.bytes_for(48));
            assert_eq!(p.value.len(), 0, "f32 buffer must be released");
            // Idempotent at the same dtype.
            p.to_quant(dtype);
            assert_eq!(p.dtype(), dtype);
            p.to_f32();
            assert!(!p.is_reduced());
            // Values round-tripped through the codec (coarse bound; exact
            // bounds live in lx-quant).
            for (a, b) in p.value.as_slice().iter().zip(before.as_slice()) {
                assert!((a - b).abs() < 1.0, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn quant_redemotion_switches_codec() {
        let mut p = Param::frozen("w", Tensor::randn(&[4, 4], 1.0, 5));
        p.to_quant(Dtype::I8Block);
        p.to_quant(Dtype::Nf4Block);
        assert_eq!(p.dtype(), Dtype::Nf4Block);
        p.to_half();
        assert!(p.is_half() && !p.is_quant());
    }

    #[test]
    fn nm_demotion_prunes_then_roundtrips_bit_exactly() {
        let mut p = Param::frozen("w", Tensor::randn(&[8, 8], 1.0, 6));
        // Oracle: the same pruning applied to a dense copy.
        let mut pruned = p.value.as_slice().to_vec();
        lx_tensor::nm::round_slice(&mut pruned, 8, 8, 2, 4);
        p.to_nm();
        assert!(p.is_nm() && p.is_reduced() && !p.is_half() && !p.is_quant());
        assert_eq!(p.dtype(), Dtype::Nm24);
        assert_eq!(p.shape(), &[8, 8]);
        assert_eq!(p.numel(), 64);
        assert_eq!(p.storage_bytes(), Dtype::Nm24.bytes_for(64));
        assert_eq!(p.value.len(), 0, "f32 buffer must be released");
        // Idempotent.
        p.to_nm();
        assert!(p.is_nm());
        p.to_f32();
        assert!(!p.is_reduced());
        for (a, b) in p.value.as_slice().iter().zip(&pruned) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn nm_redemotion_crosses_storage_families() {
        let mut p = Param::frozen("w", Tensor::randn(&[4, 8], 1.0, 7));
        p.to_half();
        p.to_nm();
        assert!(p.is_nm() && !p.is_half());
        p.to_quant(Dtype::I8Block);
        assert!(p.is_quant() && !p.is_nm());
        p.to_nm();
        assert!(p.is_nm() && !p.is_quant());
    }

    #[test]
    #[should_panic(expected = "stay f32")]
    fn trainable_params_cannot_be_nm_pruned() {
        let mut p = Param::new("w", Tensor::zeros(&[2, 4]), true);
        p.to_nm();
    }

    #[test]
    fn nm_matmuls_are_bit_identical_to_decoded_oracle() {
        let x = Tensor::randn(&[5, 8], 1.0, 31);
        let g = Tensor::randn(&[5, 7], 1.0, 32);
        let mut p = Param::frozen("w", Tensor::randn(&[8, 7], 1.0, 33));
        p.to_nm();
        // The codec is lossless on survivors, so unlike f16/quant the fused
        // path must match the decoded oracle bit for bit.
        let decoded = Param::frozen("w", p.nm.as_ref().unwrap().to_tensor());
        for (a, b) in p
            .matmul(&x)
            .as_slice()
            .iter()
            .zip(decoded.matmul(&x).as_slice())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in p
            .matmul_nt(&g)
            .as_slice()
            .iter()
            .zip(decoded.matmul_nt(&g).as_slice())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn nm_row_helpers_decode_bit_identically() {
        let t = Tensor::randn(&[4, 6], 1.0, 34);
        let mut p = Param::frozen("emb", t.clone());
        p.to_nm();
        let full = p.nm.as_ref().unwrap().to_f32_vec();
        let mut row = vec![0.0f32; 6];
        p.copy_row_into(2, &mut row);
        for (j, v) in row.iter().enumerate() {
            assert_eq!(v.to_bits(), full[2 * 6 + j].to_bits());
        }
        let mut acc = row.clone();
        p.add_row_into(2, &mut acc);
        for (a, b) in acc.iter().zip(&row) {
            assert!((a - 2.0 * b).abs() < 1e-6);
        }
        let mut slab = vec![0.0f32; 2 * 6];
        p.decode_rows(1, 2, &mut slab);
        for (j, v) in slab.iter().enumerate() {
            assert_eq!(v.to_bits(), full[6 + j].to_bits());
        }
    }

    #[test]
    fn nm_external_mask_is_respected() {
        let t = Tensor::full(&[2, 4], 1.0);
        let mut p = Param::frozen("w", t);
        // Keep positions {0,1} in row 0's group and {2,3} in row 1's.
        p.to_nm_with_mask(&[0b0011, 0b1100]);
        let dec = p.nm.as_ref().unwrap().to_f32_vec();
        assert_eq!(dec, vec![1.0, 1.0, 0.0, 0.0, 0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "stay f32")]
    fn trainable_params_cannot_be_demoted() {
        let mut p = Param::new("w", Tensor::zeros(&[2, 2]), true);
        p.to_half();
    }

    #[test]
    #[should_panic(expected = "stay f32")]
    fn trainable_params_cannot_be_quantized() {
        let mut p = Param::new("w", Tensor::zeros(&[2, 2]), true);
        p.to_quant(Dtype::I8Block);
    }

    #[test]
    fn matmul_helpers_agree_across_storage() {
        let x = Tensor::randn(&[5, 8], 1.0, 11);
        let mut p = Param::frozen("w", Tensor::randn(&[8, 7], 1.0, 12));
        let y32 = p.matmul(&x);
        p.to_half();
        // Oracle: decode the half weights and run the f32 kernel.
        let decoded = Param::frozen("w", p.half.as_ref().unwrap().to_tensor());
        let oracle = decoded.matmul(&x);
        let y16 = p.matmul(&x);
        for (a, b) in y16.as_slice().iter().zip(oracle.as_slice()) {
            assert!((a - b).abs() <= 1e-4 * (1.0 + b.abs()), "{a} vs {b}");
        }
        // And the rounded result stays near the full-precision one.
        for (a, b) in y16.as_slice().iter().zip(y32.as_slice()) {
            assert!((a - b).abs() <= 3e-2 * (1.0 + b.abs()), "{a} vs {b}");
        }
        // matmul_nt: y·Wᵀ shape check against the same oracle.
        let g = Tensor::randn(&[5, 7], 1.0, 13);
        let wt_oracle = decoded.matmul_nt(&g);
        let wt = p.matmul_nt(&g);
        for (a, b) in wt.as_slice().iter().zip(wt_oracle.as_slice()) {
            assert!((a - b).abs() <= 1e-4 * (1.0 + b.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn quant_matmuls_match_dequantized_oracle() {
        let x = Tensor::randn(&[5, 8], 1.0, 21);
        let g = Tensor::randn(&[5, 7], 1.0, 22);
        for dtype in [Dtype::I8Block, Dtype::Nf4Block] {
            let mut p = Param::frozen("w", Tensor::randn(&[8, 7], 1.0, 23));
            p.to_quant(dtype);
            let decoded = Param::frozen("w", p.quant.as_ref().unwrap().to_tensor());
            let y = p.matmul(&x);
            let oracle = decoded.matmul(&x);
            for (a, b) in y.as_slice().iter().zip(oracle.as_slice()) {
                assert!(
                    (a - b).abs() <= 1e-4 * (1.0 + b.abs()),
                    "{dtype}: {a} vs {b}"
                );
            }
            let wt = p.matmul_nt(&g);
            let wt_oracle = decoded.matmul_nt(&g);
            for (a, b) in wt.as_slice().iter().zip(wt_oracle.as_slice()) {
                assert!(
                    (a - b).abs() <= 1e-4 * (1.0 + b.abs()),
                    "{dtype}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn row_helpers_decode() {
        let t = Tensor::randn(&[4, 6], 1.0, 9);
        let mut p = Param::frozen("emb", t.clone());
        let mut row32 = vec![0.0f32; 6];
        p.copy_row_into(2, &mut row32);
        assert_eq!(row32, t.row(2));
        p.to_half();
        let mut row16 = vec![0.0f32; 6];
        p.copy_row_into(2, &mut row16);
        for (a, b) in row16.iter().zip(t.row(2)) {
            assert!((a - b).abs() <= b.abs() * 1e-3 + 1e-7);
        }
        let mut acc = row16.clone();
        p.add_row_into(2, &mut acc);
        for (a, b) in acc.iter().zip(&row16) {
            assert!((a - 2.0 * b).abs() < 1e-6);
        }
    }

    #[test]
    fn row_helpers_decode_quant_bit_identically() {
        // 6-wide rows: every row boundary is mid-block, so this exercises
        // the flat-index scale resolution.
        let t = Tensor::randn(&[4, 6], 1.0, 10);
        for dtype in [Dtype::I8Block, Dtype::Nf4Block] {
            let mut p = Param::frozen("emb", t.clone());
            p.to_quant(dtype);
            let full = p.quant.as_ref().unwrap().to_f32_vec();
            let mut row = vec![0.0f32; 6];
            p.copy_row_into(2, &mut row);
            for (j, v) in row.iter().enumerate() {
                assert_eq!(v.to_bits(), full[2 * 6 + j].to_bits(), "{dtype}");
            }
            let mut acc = row.clone();
            p.add_row_into(2, &mut acc);
            for (a, b) in acc.iter().zip(&row) {
                assert!((a - 2.0 * b).abs() < 1e-6);
            }
            let mut slab = vec![0.0f32; 2 * 6];
            p.decode_rows(1, 2, &mut slab);
            for (j, v) in slab.iter().enumerate() {
                assert_eq!(v.to_bits(), full[6 + j].to_bits(), "{dtype}");
            }
        }
    }
}
