//! Instruction tuning + downstream evaluation (a miniature Table IV):
//! fine-tune on Alpaca-like data with and without Long Exposure, then score
//! the five downstream tasks by candidate log-likelihood.
//!
//! ```sh
//! cargo run --release -p lx-examples --example instruction_tuning
//! ```

use long_exposure::{EngineConfig, FinetuneEngine};
use lx_data::instruct::InstructGenerator;
use lx_data::tasks::{evaluate_accuracy, Task, TaskKind};
use lx_data::{Batcher, SyntheticWorld};
use lx_model::{prompt_aware_targets, score_continuation, AdamW, ModelConfig, TransformerModel};
use lx_peft::PeftMethod;

fn finetune(sparse: bool, steps: usize) -> FinetuneEngine {
    let (batch, seq, block) = (2, 128, 16);
    let cfg = ModelConfig::opt_sim_small();
    let mut model = TransformerModel::new(cfg.clone(), 42);
    PeftMethod::Lora {
        rank: 8,
        alpha: 16.0,
        targets: lx_peft::LoraTargets::all(),
    }
    .apply(&mut model, 7);
    // Keep the embedding trainable so the tiny model can actually learn the
    // token pairing (the pre-trained backbone is random here).
    model.embedding.tokens.trainable = true;

    let world = SyntheticWorld::new(cfg.vocab_size as u32, 5);
    let gen = InstructGenerator::new(world);
    let mut batcher = Batcher::new(gen.stream(100_000, 0));
    let mut engine = FinetuneEngine::new(
        model,
        EngineConfig {
            block_size: block,
            calib_epochs: 25,
            ..EngineConfig::default()
        },
    );
    if sparse {
        let calib: Vec<(Vec<u32>, usize, usize)> = (0..2)
            .map(|_| (batcher.next_batch(batch, seq), batch, seq))
            .collect();
        engine.calibrate(&calib);
    }
    let mut opt = AdamW::new(3e-3, 0.0);
    for i in 0..steps {
        let ids = batcher.next_batch(batch, seq);
        let targets = prompt_aware_targets(&ids, batch, seq, 0);
        let stats = if sparse {
            engine.train_step(&ids, &targets, batch, seq, &mut opt)
        } else {
            engine.train_step_dense(&ids, &targets, batch, seq, &mut opt)
        };
        if i % 20 == 0 {
            println!("  step {i:>3} loss {:.3}", stats.loss);
        }
    }
    engine
}

fn main() {
    let steps = 80;
    println!("== instruction tuning: dense vs Long Exposure ==");
    println!("-- dense fine-tuning --");
    let mut dense = finetune(false, steps);
    println!("-- Long Exposure fine-tuning --");
    let mut sparse = finetune(true, steps);

    let world = SyntheticWorld::new(dense.model.config.vocab_size as u32, 5);
    println!("\n{:<18} {:>8} {:>8}", "task", "dense", "long-exp");
    for kind in TaskKind::all() {
        let task = Task::new(kind, world.clone());
        let examples = task.examples(60);
        let acc_dense =
            evaluate_accuracy(&examples, |p, c| score_continuation(&mut dense.model, p, c));
        let acc_sparse = evaluate_accuracy(&examples, |p, c| {
            score_continuation(&mut sparse.model, p, c)
        });
        println!(
            "{:<18} {:>7.1}% {:>7.1}%",
            kind.name(),
            100.0 * acc_dense,
            100.0 * acc_sparse
        );
    }
    println!("\n(accuracies should track each other closely — Table IV's claim)");
}
