//! Parameter-storage precision plans.
//!
//! The paper fine-tunes with FP16 parameters and FP32 compute (§VII-A);
//! [`Precision::F16Frozen`] reproduces the storage side of that recipe:
//! frozen backbone *matrices* (attention projections, MLP weights, embedding
//! tables) are demoted to half storage, while everything numerically
//! sensitive — biases, LayerNorm affine parameters, trainable PEFT adapters,
//! gradients and optimizer state — stays f32. Compute is f32 throughout;
//! the f16 bits are decoded inside the GEMM pack routines (see
//! `lx_kernels::KernelBackend::gemm_f16`), so storage is halved without a
//! half-arithmetic path.
//!
//! [`Precision::Int8Frozen`] and [`Precision::Nf4Frozen`] push the same
//! recipe past f16 with the `lx-quant` block codecs (QLoRA lineage): frozen
//! matrices store int8 or NF4 codes plus one f32 absmax scale per 64-element
//! block, ~0.27x and ~0.14x of the f32 bytes respectively. The demotion
//! rule, the fused dequant-in-pack GEMMs, and the sparse-path slab decode
//! all mirror the f16 plan — one `Precision` dispatch covers the whole
//! storage family.
//!
//! Pair with [`LossScaler`](crate::optim::LossScaler) when training: the
//! rounded backbone shifts activation magnitudes slightly, and scaling keeps
//! small adapter gradients out of the f32 underflow range the same way the
//! paper's FP16 runs do. The quantized plans perturb the backbone more than
//! f16 does (see the precision-differential loss envelopes in
//! `tests/tests/precision_differential.rs`), but the adapters still train
//! because they — and all gradients — stay f32.

/// Storage plan for a model's parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Precision {
    /// Everything stored f32 (the seed behaviour).
    #[default]
    F32,
    /// Frozen backbone matrices stored f16; trainable parameters, biases,
    /// LayerNorm, gradients and optimizer state stay f32.
    F16Frozen,
    /// Frozen backbone matrices stored as per-block-scaled symmetric int8
    /// (one f32 absmax scale per 64 elements); everything else stays f32.
    Int8Frozen,
    /// Frozen backbone matrices stored as NF4 4-bit normal-float codes (two
    /// per byte, one f32 absmax scale per 64 elements); everything else
    /// stays f32.
    Nf4Frozen,
    /// Frozen backbone matrices magnitude-pruned to 2:4 structured sparsity
    /// and stored compacted (kept values bit-exact f32 + one index-mask byte
    /// per group, 0.5625x of the f32 bytes); everything else stays f32.
    /// Unlike the quantized plans the demotion changes the *function* (half
    /// the weights become exact zeros, SLoPe/SPP lineage) but the stored
    /// survivors are exact, so compute on the pruned weights is bit-identical
    /// to dense compute on their decoded form — and the fused GEMMs skip
    /// all-zero weight groups at pack time.
    Nm24Frozen,
}

impl Precision {
    pub const fn name(self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::F16Frozen => "f16-frozen",
            Precision::Int8Frozen => "int8-frozen",
            Precision::Nf4Frozen => "nf4-frozen",
            Precision::Nm24Frozen => "nm24-frozen",
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}
