//! Differential property tests: the `Packed` backend (including its
//! runtime-detected SIMD microkernel, when the host has one) must match the
//! `Reference` scalar oracle bit-tolerantly (≤1e-4 relative) on every GEMM
//! variant, across odd and degenerate shapes, strided views, and the
//! block-sparse / neuron-sparse operator shapes the sparse crate issues.
//!
//! Shape axes are seeded sweeps, not proptest: the workspace is offline, and
//! deterministic sweeps reproduce exactly in CI.

use lx_kernels::{KernelBackend, MR, NR, PACKED, REFERENCE};
use lx_sparse::attention::{block_data_to_dense, dsd, dsd_tn, sdd_nt, CausalFill};
use lx_sparse::neuron::{fc1_forward, fc2_forward, ColMajorWeights, NeuronBlockSet};
use lx_sparse::patterns::PatternSpec;
use lx_sparse::BlockCsr;
use lx_tensor::rng::randn_vec;

const TOL: f32 = 1e-4;

fn assert_close(what: &str, got: &[f32], want: &[f32]) {
    assert_eq!(got.len(), want.len(), "{what}: length");
    for (i, (x, y)) in got.iter().zip(want).enumerate() {
        assert!(
            (x - y).abs() <= TOL * (1.0 + y.abs()),
            "{what}: idx {i}: {x} vs {y}"
        );
    }
}

/// The sweep axis: degenerate, around both register tiles, around the KC
/// cache block, and a larger-than-one-block size.
fn interesting_sizes() -> Vec<usize> {
    let mut v = vec![0, 1, 3, MR - 1, MR, MR + 1, NR - 1, NR, NR + 1, 40];
    v.sort_unstable();
    v.dedup();
    v
}

#[test]
fn packed_matches_reference_on_gemm_shape_sweep() {
    let sizes = interesting_sizes();
    let mut seed = 0u64;
    for &m in &sizes {
        for &k in &sizes {
            for &n in &sizes {
                seed += 1;
                let a = randn_vec(m * k, 1.0, seed);
                let b = randn_vec(k * n, 1.0, seed + 1000);
                let mut c_ref = randn_vec(m * n, 1.0, seed + 2000);
                let mut c_packed = c_ref.clone();
                // beta = 0.5 checks both the product and the C pre-scaling.
                REFERENCE.gemm(
                    m,
                    k,
                    n,
                    &a,
                    k.max(1),
                    &b,
                    n.max(1),
                    &mut c_ref,
                    n.max(1),
                    0.5,
                );
                PACKED.gemm(
                    m,
                    k,
                    n,
                    &a,
                    k.max(1),
                    &b,
                    n.max(1),
                    &mut c_packed,
                    n.max(1),
                    0.5,
                );
                assert_close(&format!("gemm {m}x{k}x{n}"), &c_packed, &c_ref);
            }
        }
    }
}

#[test]
fn packed_matches_reference_on_nt_tn_sweep() {
    let sizes = interesting_sizes();
    let mut seed = 50_000u64;
    for &m in &sizes {
        for &k in &sizes {
            for &n in &sizes {
                seed += 1;
                let a_nt = randn_vec(m * k, 1.0, seed);
                let b_nt = randn_vec(n * k, 1.0, seed + 1000);
                let mut c_ref = vec![0.0; m * n];
                let mut c_packed = vec![0.0; m * n];
                REFERENCE.gemm_nt(
                    m,
                    k,
                    n,
                    &a_nt,
                    k.max(1),
                    &b_nt,
                    k.max(1),
                    &mut c_ref,
                    n.max(1),
                    0.0,
                );
                PACKED.gemm_nt(
                    m,
                    k,
                    n,
                    &a_nt,
                    k.max(1),
                    &b_nt,
                    k.max(1),
                    &mut c_packed,
                    n.max(1),
                    0.0,
                );
                assert_close(&format!("gemm_nt {m}x{k}x{n}"), &c_packed, &c_ref);

                let a_tn = randn_vec(k * m, 1.0, seed + 2000);
                let b_tn = randn_vec(k * n, 1.0, seed + 3000);
                let mut c_ref = randn_vec(m * n, 1.0, seed + 4000);
                let mut c_packed = c_ref.clone();
                REFERENCE.gemm_tn(
                    m,
                    k,
                    n,
                    &a_tn,
                    m.max(1),
                    &b_tn,
                    n.max(1),
                    &mut c_ref,
                    n.max(1),
                    1.0,
                );
                PACKED.gemm_tn(
                    m,
                    k,
                    n,
                    &a_tn,
                    m.max(1),
                    &b_tn,
                    n.max(1),
                    &mut c_packed,
                    n.max(1),
                    1.0,
                );
                assert_close(&format!("gemm_tn {m}x{k}x{n}"), &c_packed, &c_ref);
            }
        }
    }
}

#[test]
fn packed_matches_reference_on_strided_views() {
    // The exact window shapes the sparse operators issue: compact activation
    // matrices addressed with lda = width, C written into a strided slab.
    let (rows, width, b, d) = (23, 3 * NR, NR, 37);
    let act = randn_vec(rows * width, 1.0, 7);
    let w = randn_vec(b * d, 1.0, 8);
    for block in 0..width / b {
        let a_win = &act[block * b..];
        let mut c_ref = vec![0.0; rows * d];
        let mut c_packed = vec![0.0; rows * d];
        REFERENCE.gemm(rows, b, d, a_win, width, &w, d, &mut c_ref, d, 0.0);
        PACKED.gemm(rows, b, d, a_win, width, &w, d, &mut c_packed, d, 0.0);
        assert_close(&format!("strided block {block}"), &c_packed, &c_ref);

        // Strided C: write one block column of a wide output.
        let mut y_ref = vec![0.0; rows * width];
        let mut y_packed = vec![0.0; rows * width];
        let wt = randn_vec(b * d, 1.0, 9);
        REFERENCE.gemm_nt(
            rows,
            d,
            b,
            &c_ref,
            d,
            &wt,
            d,
            &mut y_ref[block * b..],
            width,
            0.0,
        );
        PACKED.gemm_nt(
            rows,
            d,
            b,
            &c_packed,
            d,
            &wt,
            d,
            &mut y_packed[block * b..],
            width,
            0.0,
        );
        assert_close(&format!("strided C block {block}"), &y_packed, &y_ref);
    }
}

#[test]
fn large_shape_stays_within_tolerance() {
    // One shape big enough to traverse several KC blocks and NC panels, where
    // f32 summation-order differences accumulate the most.
    let (m, k, n) = (70, 600, 70);
    let a = randn_vec(m * k, 1.0, 11);
    let b = randn_vec(k * n, 1.0, 12);
    let mut c_ref = vec![0.0; m * n];
    let mut c_packed = vec![0.0; m * n];
    REFERENCE.gemm(m, k, n, &a, k, &b, n, &mut c_ref, n, 0.0);
    PACKED.gemm(m, k, n, &a, k, &b, n, &mut c_packed, n, 0.0);
    assert_close("large gemm", &c_packed, &c_ref);
}

/// Mixed-precision differential: the f16-B variants (fused pack-time decode
/// in `Packed`, on-load decode in `Reference`) must match the oracle of
/// "decode all of B to f32, then run the f32 kernel" within the usual
/// backend tolerance — across the same shape grid as the f32 sweeps.
#[test]
fn f16_b_gemm_matches_decoded_oracle_on_shape_sweep() {
    let sizes = interesting_sizes();
    let mut seed = 100_000u64;
    for &m in &sizes {
        for &k in &sizes {
            for &n in &sizes {
                seed += 1;
                let a = randn_vec(m * k, 1.0, seed);
                let b32 = randn_vec(k * n, 1.0, seed + 1000);
                let bits = lx_kernels::half::encode_slice(&b32);
                // Oracle B: the exact f32 values the f16 storage holds.
                let decoded: Vec<f32> = bits
                    .iter()
                    .map(|&x| lx_kernels::half::f16_bits_to_f32(x))
                    .collect();
                let mut want = randn_vec(m * n, 1.0, seed + 2000);
                let mut got_ref = want.clone();
                let mut got_packed = want.clone();
                REFERENCE.gemm(
                    m,
                    k,
                    n,
                    &a,
                    k.max(1),
                    &decoded,
                    n.max(1),
                    &mut want,
                    n.max(1),
                    0.5,
                );
                REFERENCE.gemm_f16(
                    m,
                    k,
                    n,
                    &a,
                    k.max(1),
                    &bits,
                    n.max(1),
                    &mut got_ref,
                    n.max(1),
                    0.5,
                );
                PACKED.gemm_f16(
                    m,
                    k,
                    n,
                    &a,
                    k.max(1),
                    &bits,
                    n.max(1),
                    &mut got_packed,
                    n.max(1),
                    0.5,
                );
                assert_close(&format!("ref gemm_f16 {m}x{k}x{n}"), &got_ref, &want);
                assert_close(&format!("packed gemm_f16 {m}x{k}x{n}"), &got_packed, &want);
            }
        }
    }
}

#[test]
fn f16_b_gemm_nt_matches_decoded_oracle_on_shape_sweep() {
    let sizes = interesting_sizes();
    let mut seed = 150_000u64;
    for &m in &sizes {
        for &k in &sizes {
            for &n in &sizes {
                seed += 1;
                let a = randn_vec(m * k, 1.0, seed);
                let b32 = randn_vec(n * k, 1.0, seed + 1000);
                let bits = lx_kernels::half::encode_slice(&b32);
                let decoded: Vec<f32> = bits
                    .iter()
                    .map(|&x| lx_kernels::half::f16_bits_to_f32(x))
                    .collect();
                let mut want = vec![0.0; m * n];
                let mut got_ref = vec![0.0; m * n];
                let mut got_packed = vec![0.0; m * n];
                REFERENCE.gemm_nt(
                    m,
                    k,
                    n,
                    &a,
                    k.max(1),
                    &decoded,
                    k.max(1),
                    &mut want,
                    n.max(1),
                    0.0,
                );
                REFERENCE.gemm_nt_f16(
                    m,
                    k,
                    n,
                    &a,
                    k.max(1),
                    &bits,
                    k.max(1),
                    &mut got_ref,
                    n.max(1),
                    0.0,
                );
                PACKED.gemm_nt_f16(
                    m,
                    k,
                    n,
                    &a,
                    k.max(1),
                    &bits,
                    k.max(1),
                    &mut got_packed,
                    n.max(1),
                    0.0,
                );
                assert_close(&format!("ref gemm_nt_f16 {m}x{k}x{n}"), &got_ref, &want);
                assert_close(
                    &format!("packed gemm_nt_f16 {m}x{k}x{n}"),
                    &got_packed,
                    &want,
                );
            }
        }
    }
}

/// Force the packed backend under the block-sparse attention ops by running
/// the per-block shapes they issue through both backends directly.
#[test]
fn attention_block_shapes_match() {
    for (b, dh) in [(4usize, 8usize), (16, 32), (32, 64), (32, 80)] {
        let q = randn_vec(b * dh, 1.0, 21);
        let k = randn_vec(b * dh, 1.0, 22);
        let mut s_ref = vec![0.0; b * b];
        let mut s_packed = vec![0.0; b * b];
        REFERENCE.gemm_nt(b, dh, b, &q, dh, &k, dh, &mut s_ref, b, 0.0);
        PACKED.gemm_nt(b, dh, b, &q, dh, &k, dh, &mut s_packed, b, 0.0);
        assert_close(&format!("scores block b={b} dh={dh}"), &s_packed, &s_ref);

        let p = randn_vec(b * b, 1.0, 23);
        let v = randn_vec(b * dh, 1.0, 24);
        let mut o_ref = vec![0.0; b * dh];
        let mut o_packed = vec![0.0; b * dh];
        REFERENCE.gemm(b, b, dh, &p, b, &v, dh, &mut o_ref, dh, 1.0);
        PACKED.gemm(b, b, dh, &p, b, &v, dh, &mut o_packed, dh, 1.0);
        assert_close(&format!("context block b={b}"), &o_packed, &o_ref);

        let mut t_ref = vec![0.0; b * dh];
        let mut t_packed = vec![0.0; b * dh];
        REFERENCE.gemm_tn(b, b, dh, &p, b, &v, dh, &mut t_ref, dh, 1.0);
        PACKED.gemm_tn(b, b, dh, &p, b, &v, dh, &mut t_packed, dh, 1.0);
        assert_close(&format!("transposed block b={b}"), &t_packed, &t_ref);
    }
}

/// End-to-end sparse attention against a dense matmul oracle, whatever
/// backend the dispatcher picks — the routed pipeline must stay exact.
#[test]
fn sparse_attention_pipeline_matches_dense_oracle() {
    let (b, s, dh) = (8usize, 64usize, 16usize);
    let lay = BlockCsr::from_mask(&PatternSpec::LocalGlobal { w: 2, g: 1 }.mask(s / b), b);
    let q = randn_vec(s * dh, 1.0, 31);
    let k = randn_vec(s * dh, 1.0, 32);
    let mut blocks = vec![0.0; lay.data_len()];
    sdd_nt(&q, &k, s, dh, 0.25, &lay, CausalFill::None, &mut blocks);
    let dense_scores = block_data_to_dense(&blocks, &lay);
    for i in 0..s {
        for j in 0..s {
            if !lay.to_mask().get(i / b, j / b) {
                continue;
            }
            let expect: f32 = 0.25
                * q[i * dh..(i + 1) * dh]
                    .iter()
                    .zip(&k[j * dh..(j + 1) * dh])
                    .map(|(x, y)| x * y)
                    .sum::<f32>();
            let got = dense_scores[i * s + j];
            assert!(
                (got - expect).abs() <= TOL * (1.0 + expect.abs()),
                "scores ({i},{j}): {got} vs {expect}"
            );
        }
    }
    // DSD and its transpose agree with the dense expansion.
    let x = randn_vec(s * dh, 1.0, 33);
    let mut out = vec![0.0; s * dh];
    dsd(&blocks, &x, s, dh, &lay, &mut out);
    let mut expect = vec![0.0; s * dh];
    for i in 0..s {
        for j in 0..s {
            let pv = dense_scores[i * s + j];
            for t in 0..dh {
                expect[i * dh + t] += pv * x[j * dh + t];
            }
        }
    }
    assert_close("dsd", &out, &expect);
    let mut out_t = vec![0.0; s * dh];
    dsd_tn(&blocks, &x, s, dh, &lay, &mut out_t);
    let mut expect_t = vec![0.0; s * dh];
    for i in 0..s {
        for j in 0..s {
            let pv = dense_scores[i * s + j];
            for t in 0..dh {
                expect_t[j * dh + t] += pv * x[i * dh + t];
            }
        }
    }
    assert_close("dsd_tn", &out_t, &expect_t);
}

/// The neuron-sparse MLP forward path against an explicit gather/scatter
/// oracle at a width that exercises multi-panel packing.
#[test]
fn neuron_mlp_matches_oracle_at_packing_widths() {
    let (rows, d_in, h, block) = (33, 48, 8 * NR, NR);
    let set = NeuronBlockSet::from_indices(vec![0, 2, 3, 7], h / block, block);
    let width = set.active_neurons();
    let x = randn_vec(rows * d_in, 1.0, 41);
    let w1 = randn_vec(d_in * h, 0.2, 42);
    let cm = ColMajorWeights::from_row_major(&w1, d_in, h);
    let mut z = vec![0.0; rows * width];
    fc1_forward(&x, rows, cm.raw(), d_in, None, &set, &mut z);
    for r in 0..rows {
        for (ai, &blk) in set.active.iter().enumerate() {
            for t in 0..block {
                let neuron = blk as usize * block + t;
                let expect: f32 = (0..d_in)
                    .map(|i| x[r * d_in + i] * w1[i * h + neuron])
                    .sum();
                let got = z[r * width + ai * block + t];
                assert!(
                    (got - expect).abs() <= TOL * (1.0 + expect.abs()),
                    "fc1 r={r} neuron={neuron}: {got} vs {expect}"
                );
            }
        }
    }
    let d_out = 29;
    let w2 = randn_vec(h * d_out, 0.2, 43);
    let mut y = vec![0.0; rows * d_out];
    fc2_forward(&z, rows, &w2, d_out, None, &set, &mut y);
    let mut expect = vec![0.0; rows * d_out];
    for r in 0..rows {
        for (ai, &blk) in set.active.iter().enumerate() {
            for t in 0..block {
                let neuron = blk as usize * block + t;
                let av = z[r * width + ai * block + t];
                for c in 0..d_out {
                    expect[r * d_out + c] += av * w2[neuron * d_out + c];
                }
            }
        }
    }
    assert_close("fc2", &y, &expect);
}
