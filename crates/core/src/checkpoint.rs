//! Predictor checkpointing.
//!
//! Predictors are trained offline (§V-B) and reused across fine-tuning runs
//! of the same backbone, so they need a durable format. The format is a
//! small header + raw little-endian f32 payloads via `bytes`, with a JSON
//! metadata block (serde) describing shapes — readable by external tooling.

use crate::predictor::{AttnPredictor, MlpPredictor};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use lx_tensor::Tensor;
use serde::{Deserialize, Serialize};

const MAGIC: &[u8; 8] = b"LXPRED01";

/// Shape metadata stored alongside the raw weights.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct CheckpointMeta {
    pub d_model: usize,
    pub n_heads: usize,
    pub rank: usize,
    pub n_layers: usize,
    pub mlp_blocks: usize,
    pub block_size: usize,
}

/// Serialise all layers' predictors into one buffer.
pub fn save_predictors(
    meta: &CheckpointMeta,
    attn: &[AttnPredictor],
    mlp: &[MlpPredictor],
) -> Bytes {
    assert_eq!(attn.len(), meta.n_layers);
    assert_eq!(mlp.len(), meta.n_layers);
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    let meta_json = serde_json::to_vec(meta).expect("meta serialises");
    buf.put_u32_le(meta_json.len() as u32);
    buf.put_slice(&meta_json);
    for layer in attn {
        for (wq, wk) in &layer.heads {
            put_tensor(&mut buf, wq);
            put_tensor(&mut buf, wk);
        }
        for &s in &layer.distance_slopes {
            buf.put_f32_le(s);
        }
        for &b in &layer.bias {
            buf.put_f32_le(b);
        }
    }
    for layer in mlp {
        put_tensor(&mut buf, &layer.wa);
    }
    buf.freeze()
}

/// Reconstruct predictors from a buffer produced by [`save_predictors`].
pub fn load_predictors(
    mut data: Bytes,
) -> Result<(CheckpointMeta, Vec<AttnPredictor>, Vec<MlpPredictor>), String> {
    if data.remaining() < 12 {
        return Err("truncated checkpoint".into());
    }
    let mut magic = [0u8; 8];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(format!("bad magic {magic:?}"));
    }
    let meta_len = data.get_u32_le() as usize;
    if data.remaining() < meta_len {
        return Err("truncated metadata".into());
    }
    let meta_bytes = data.copy_to_bytes(meta_len);
    let meta: CheckpointMeta =
        serde_json::from_slice(&meta_bytes).map_err(|e| format!("bad metadata: {e}"))?;
    let mut attn = Vec::with_capacity(meta.n_layers);
    for l in 0..meta.n_layers {
        let mut p = AttnPredictor::new(meta.d_model, meta.n_heads, meta.rank, 0);
        for h in 0..meta.n_heads {
            p.heads[h].0 = get_tensor(&mut data, &[meta.d_model, meta.rank])
                .ok_or_else(|| format!("truncated wq layer {l} head {h}"))?;
            p.heads[h].1 = get_tensor(&mut data, &[meta.d_model, meta.rank])
                .ok_or_else(|| format!("truncated wk layer {l} head {h}"))?;
        }
        let mut slopes = Vec::with_capacity(meta.n_heads);
        for _ in 0..meta.n_heads {
            if data.remaining() < 4 {
                return Err("truncated slopes".into());
            }
            slopes.push(data.get_f32_le());
        }
        p.set_distance_slopes(slopes, meta.block_size);
        for h in 0..meta.n_heads {
            if data.remaining() < 4 {
                return Err("truncated head bias".into());
            }
            p.bias[h] = data.get_f32_le();
        }
        attn.push(p);
    }
    let mut mlp = Vec::with_capacity(meta.n_layers);
    for l in 0..meta.n_layers {
        let mut p = MlpPredictor::new(
            meta.d_model,
            meta.mlp_blocks * meta.block_size,
            meta.block_size,
            0,
        );
        p.wa = get_tensor(&mut data, &[meta.d_model, meta.mlp_blocks])
            .ok_or_else(|| format!("truncated wa layer {l}"))?;
        mlp.push(p);
    }
    if data.has_remaining() {
        return Err(format!("{} trailing bytes", data.remaining()));
    }
    Ok((meta, attn, mlp))
}

fn put_tensor(buf: &mut BytesMut, t: &Tensor) {
    buf.put_u32_le(t.len() as u32);
    for &v in t.as_slice() {
        buf.put_f32_le(v);
    }
}

fn get_tensor(data: &mut Bytes, shape: &[usize]) -> Option<Tensor> {
    if data.remaining() < 4 {
        return None;
    }
    let len = data.get_u32_le() as usize;
    if len != shape.iter().product::<usize>() || data.remaining() < len * 4 {
        return None;
    }
    let mut vals = Vec::with_capacity(len);
    for _ in 0..len {
        vals.push(data.get_f32_le());
    }
    Some(Tensor::from_vec(vals, shape))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (CheckpointMeta, Vec<AttnPredictor>, Vec<MlpPredictor>) {
        let meta = CheckpointMeta {
            d_model: 8,
            n_heads: 2,
            rank: 3,
            n_layers: 2,
            mlp_blocks: 4,
            block_size: 4,
        };
        let attn: Vec<AttnPredictor> = (0..2)
            .map(|l| {
                let mut p = AttnPredictor::new(8, 2, 3, 100 + l);
                p.set_distance_slopes(vec![0.25, 0.5], 4);
                p.bias = vec![0.1, -0.2];
                p
            })
            .collect();
        let mlp: Vec<MlpPredictor> = (0..2).map(|l| MlpPredictor::new(8, 16, 4, 200 + l)).collect();
        (meta, attn, mlp)
    }

    #[test]
    fn roundtrip_preserves_weights() {
        let (meta, attn, mlp) = sample();
        let bytes = save_predictors(&meta, &attn, &mlp);
        let (meta2, attn2, mlp2) = load_predictors(bytes).expect("load");
        assert_eq!(meta, meta2);
        for (a, b) in attn.iter().zip(&attn2) {
            for ((wq, wk), (wq2, wk2)) in a.heads.iter().zip(&b.heads) {
                assert_eq!(wq.as_slice(), wq2.as_slice());
                assert_eq!(wk.as_slice(), wk2.as_slice());
            }
            assert_eq!(a.distance_slopes, b.distance_slopes);
            assert_eq!(a.bias, b.bias);
            assert_eq!(a.block_size, b.block_size);
        }
        for (a, b) in mlp.iter().zip(&mlp2) {
            assert_eq!(a.wa.as_slice(), b.wa.as_slice());
        }
    }

    #[test]
    fn loaded_predictors_predict_identically() {
        let (meta, attn, mlp) = sample();
        let bytes = save_predictors(&meta, &attn, &mlp);
        let (_, attn2, mlp2) = load_predictors(bytes).unwrap();
        let x = Tensor::randn(&[16, 8], 1.0, 5);
        let m1 = attn[0].predict_masks(&x, 1, 16, 4);
        let m2 = attn2[0].predict_masks(&x, 1, 16, 4);
        assert_eq!(m1, m2);
        assert_eq!(mlp[0].predict(&x), mlp2[0].predict(&x));
    }

    #[test]
    fn corrupt_magic_rejected() {
        let (meta, attn, mlp) = sample();
        let mut raw = save_predictors(&meta, &attn, &mlp).to_vec();
        raw[0] = b'X';
        assert!(load_predictors(Bytes::from(raw)).is_err());
    }

    #[test]
    fn truncated_payload_rejected() {
        let (meta, attn, mlp) = sample();
        let raw = save_predictors(&meta, &attn, &mlp).to_vec();
        let cut = Bytes::from(raw[..raw.len() - 5].to_vec());
        assert!(load_predictors(cut).is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        let (meta, attn, mlp) = sample();
        let mut raw = save_predictors(&meta, &attn, &mlp).to_vec();
        raw.extend_from_slice(&[0, 1, 2]);
        assert!(load_predictors(Bytes::from(raw)).is_err());
    }
}
