//! CI validator for Chrome trace-event files produced by `--trace`.
//!
//! ```sh
//! cargo run --release -p lx-bench --bin trace_check -- lx_step_trace.json
//! ```
//!
//! Parses the file with `lx-obs`'s schema validator (top-level object,
//! `traceEvents` array of complete `ph:"X"` events with numeric `ts`/`dur`)
//! and exits non-zero on any malformation, so a formatting regression in the
//! exporter fails the pipeline rather than silently producing a file
//! Perfetto cannot load. `--min-events N` additionally requires at least `N`
//! events (defaults to 1 — an empty trace usually means the instrumented
//! code never ran).

use lx_obs::validate_chrome_trace_file;
use std::path::Path;
use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<&String> = Vec::new();
    let mut min_events: usize = 1;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--min-events" {
            min_events = it
                .next()
                .and_then(|v| v.parse().ok())
                .expect("--min-events takes an integer");
        } else if !arg.starts_with("--") {
            paths.push(arg);
        }
    }
    if paths.is_empty() {
        eprintln!("usage: trace_check <trace.json>... [--min-events N]");
        exit(2);
    }
    let mut failed = false;
    for path in paths {
        match validate_chrome_trace_file(Path::new(path)) {
            Ok(stats) if stats.events < min_events => {
                eprintln!(
                    "trace_check: {path}: only {} events (expected >= {min_events})",
                    stats.events
                );
                failed = true;
            }
            Ok(stats) => {
                println!(
                    "trace_check: {path}: OK — {} events, {} span names, {:.1} ms covered",
                    stats.events,
                    stats.names,
                    stats.span_us / 1e3
                );
            }
            Err(e) => {
                eprintln!("trace_check: {path}: INVALID — {e}");
                failed = true;
            }
        }
    }
    if failed {
        exit(1);
    }
}
