//! Pluggable sparsity planning: *where the sparse plan comes from* is a
//! first-class, swappable object instead of a hardcoded method choice.
//!
//! A [`SparsityPolicy`] is asked once per step for a [`PlanSource`] and may
//! run auxiliary passes on the model to answer (the oracle runs a dense
//! capture pass). The engine, the
//! ablation bins and `lx-serve` all select plans through the same trait:
//!
//! * [`DensePolicy`] — the dense baseline (HuggingFace-PEFT stand-in).
//! * [`PredictedPolicy`] — Long Exposure: low-rank predictors plan each layer
//!   inline from its block input (the paper's online prediction point).
//! * [`OraclePolicy`] — exposer ground truth: a dense capture pass per step,
//!   then exact head masks / neuron blocks. The quality upper bound of the
//!   Fig. 11 predictor ablation, at the cost of an extra dense forward.
//! * [`RandomPolicy`] — random patterns at matched density (the paper's
//!   "random sparse pattern" ablation arms).

use crate::exposer::Exposer;
use crate::predictor::{AttnPredictor, MlpPredictor};
use lx_model::{
    Activation, CaptureConfig, LayerPlan, LayerPlanner, ModelConfig, PlanSource, SparsePlan,
    StepRequest, TransformerModel,
};
use lx_sparse::{NeuronBlockSet, PatternPool, PatternSpec};
use lx_tensor::Tensor;
use std::sync::Arc;

/// One step's sparsity decision. Implementations may stash state between
/// steps (pattern pools, predictors, the plan they hand out borrows).
pub trait SparsityPolicy {
    fn name(&self) -> &'static str;

    /// Produce the plan source for one step over `(batch, seq)`. May run
    /// auxiliary passes on `model` (the oracle runs a dense capture pass).
    fn source<'a>(
        &'a mut self,
        model: &mut TransformerModel,
        ids: &[u32],
        batch: usize,
        seq: usize,
    ) -> PlanSource<'a>;

    /// Whether wall time spent inside [`Self::source`] counts as prediction
    /// overhead (the Fig. 10 "predict" phase). The oracle's capture pass
    /// does, as does the predicted policy's plan-cache bookkeeping; the
    /// trivial builders keep the legacy accounting of zero.
    fn metered(&self) -> bool {
        false
    }

    /// Whether the produced plan is ground truth for *one specific batch*
    /// (the oracle). Batch-specific plans cannot honestly serve micro-batch
    /// accumulation, so the engine rejects multi-shard steps for them.
    fn batch_specific(&self) -> bool {
        false
    }
}

/// Cross-step plan-reuse knobs for [`PredictedPolicy`] — the shadowy-
/// sparsity amortisation: plans drift slowly, so re-running the predictors
/// every step mostly recomputes the plan it already has.
///
/// `interval = 1` (the default) re-predicts every step — the legacy,
/// paper-faithful behaviour. `interval = N > 1` predicts once and replays
/// the cached plan for the next `N − 1` steps, with **drift detection**:
/// every re-prediction is compared against the cached plan (mean Jaccard
/// overlap of attention layouts and neuron-block sets), and while the
/// overlap sits below `min_overlap` the policy keeps predicting every step
/// instead of trusting a stale plan.
///
/// Environment overrides (applied by [`PlanRefreshConfig::from_env`], which
/// the engine uses on its default config): `LX_PLAN_REFRESH=<interval>` and
/// `LX_PLAN_MIN_OVERLAP=<0..1>`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanRefreshConfig {
    /// Re-predict every `interval` steps (≥ 1; 1 = every step).
    pub interval: usize,
    /// Reuse is suspended while consecutive predictions overlap less than
    /// this (the plan is drifting too fast to replay).
    pub min_overlap: f32,
}

impl Default for PlanRefreshConfig {
    fn default() -> Self {
        PlanRefreshConfig {
            interval: 1,
            min_overlap: 0.5,
        }
    }
}

impl PlanRefreshConfig {
    /// `base` with `LX_PLAN_REFRESH` / `LX_PLAN_MIN_OVERLAP` overrides
    /// applied (unparsable values are ignored).
    pub fn from_env(base: PlanRefreshConfig) -> Self {
        let mut cfg = base;
        if let Some(n) = std::env::var("LX_PLAN_REFRESH")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            cfg.interval = n.max(1);
        }
        if let Some(t) = std::env::var("LX_PLAN_MIN_OVERLAP")
            .ok()
            .and_then(|v| v.parse::<f32>().ok())
        {
            cfg.min_overlap = t.clamp(0.0, 1.0);
        }
        cfg
    }
}

/// Counters describing [`PredictedPolicy`]'s cross-step plan reuse.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PlanReuseStats {
    /// Steps that ran the per-layer predictors.
    pub predicted_steps: u64,
    /// Steps that replayed the cached plan.
    pub reused_steps: u64,
    /// Overlap between the two most recent predictions, once two exist.
    pub last_overlap: Option<f32>,
    /// Reuse is currently suspended because overlap fell below the
    /// configured threshold.
    pub drifting: bool,
}

/// Dense baseline: no plan at all.
#[derive(Debug, Default, Clone, Copy)]
pub struct DensePolicy;

impl SparsityPolicy for DensePolicy {
    fn name(&self) -> &'static str {
        "dense"
    }

    fn source<'a>(
        &'a mut self,
        _model: &mut TransformerModel,
        _ids: &[u32],
        _batch: usize,
        _seq: usize,
    ) -> PlanSource<'a> {
        PlanSource::Dense
    }
}

/// Long Exposure's predicted sparsity: per-layer low-rank predictors invoked
/// inline with each block's input, pooled attention patterns combined by
/// offset arithmetic. Owns the calibrated predictors; [`crate::FinetuneEngine`]
/// trains, exports and imports them through this policy.
pub struct PredictedPolicy {
    pub(crate) pool: PatternPool,
    pub(crate) attn: Vec<AttnPredictor>,
    pub(crate) mlp: Vec<MlpPredictor>,
    pub(crate) block_size: usize,
    pub(crate) attn_min_recall: f32,
    pub(crate) enable_attn: bool,
    pub(crate) enable_mlp: bool,
    refresh: PlanRefreshConfig,
    /// The most recent complete prediction, replayable on reuse steps.
    cached: Option<CachedPlan>,
    /// Per-layer plans recorded while an inline prediction runs; finalised
    /// into `cached` at the next [`SparsityPolicy::source`] call.
    building: Vec<LayerPlan>,
    /// `(batch, eff)` of the in-flight prediction.
    pending_shape: Option<(usize, usize)>,
    /// Reuse steps taken since the cached plan was predicted.
    age: usize,
    drifting: bool,
    predicted_steps: u64,
    reused_steps: u64,
    last_overlap: Option<f32>,
}

struct CachedPlan {
    plan: SparsePlan,
    batch: usize,
    eff: usize,
}

impl PredictedPolicy {
    /// Fresh (uncalibrated) predictors for `model_cfg`. `enable_mlp` is
    /// honoured only on ReLU models — GeLU never zeroes activations, so the
    /// MLP side runs dense (paper §II-B).
    pub fn new(
        model_cfg: &ModelConfig,
        block_size: usize,
        predictor_rank: usize,
        attn_min_recall: f32,
        enable_attn: bool,
        enable_mlp: bool,
        seed: u64,
    ) -> Self {
        let attn = (0..model_cfg.n_layers)
            .map(|l| {
                let mut p = AttnPredictor::new(
                    model_cfg.d_model,
                    model_cfg.n_heads,
                    predictor_rank,
                    seed + 11 * l as u64,
                );
                if model_cfg.alibi {
                    // The model's static positional score component is known;
                    // the predictor only learns the content residual (§V).
                    p.set_distance_slopes(
                        lx_model::mha::alibi_slopes(model_cfg.n_heads),
                        block_size,
                    );
                }
                p
            })
            .collect();
        let mlp = (0..model_cfg.n_layers)
            .map(|l| {
                MlpPredictor::new(
                    model_cfg.d_model,
                    model_cfg.d_ff,
                    block_size,
                    seed + 13 * l as u64,
                )
            })
            .collect();
        PredictedPolicy {
            pool: PatternPool::default_pool(block_size, &[]),
            attn,
            mlp,
            block_size,
            attn_min_recall,
            enable_attn,
            enable_mlp: enable_mlp && model_cfg.activation == Activation::Relu,
            refresh: PlanRefreshConfig::default(),
            cached: None,
            building: Vec::new(),
            pending_shape: None,
            age: 0,
            drifting: false,
            predicted_steps: 0,
            reused_steps: 0,
            last_overlap: None,
        }
    }

    /// Install cross-step plan-reuse knobs (see [`PlanRefreshConfig`]).
    /// Drops any cached plan so the new schedule starts fresh.
    pub fn set_refresh(&mut self, refresh: PlanRefreshConfig) {
        self.refresh = PlanRefreshConfig {
            interval: refresh.interval.max(1),
            ..refresh
        };
        self.invalidate_plan_cache();
    }

    /// Drop the cached plan and drift state. Must be called whenever the
    /// predictors change under the policy (recalibration, checkpoint import)
    /// or the model they plan for changes (a different tenant's adapter
    /// attaches) — a replayed plan from the old context would be silently
    /// wrong and the drift detector only compares fresh predictions.
    pub fn invalidate_plan_cache(&mut self) {
        self.cached = None;
        self.building.clear();
        self.pending_shape = None;
        self.age = 0;
        self.drifting = false;
    }

    /// Current plan-reuse knobs.
    pub fn refresh(&self) -> PlanRefreshConfig {
        self.refresh
    }

    /// Cross-step plan-reuse counters.
    pub fn plan_reuse_stats(&self) -> PlanReuseStats {
        PlanReuseStats {
            predicted_steps: self.predicted_steps,
            reused_steps: self.reused_steps,
            last_overlap: self.last_overlap,
            drifting: self.drifting,
        }
    }

    /// Mean overlap between two plans: per layer, the Jaccard overlap of the
    /// attention layouts and of the neuron-block sets, averaged over every
    /// component present in both. `None` when nothing is comparable.
    fn plan_overlap(a: &SparsePlan, b: &SparsePlan) -> Option<f32> {
        let mut sum = 0.0f64;
        let mut n = 0usize;
        for (la, lb) in a.layers.iter().zip(&b.layers) {
            if let (Some(x), Some(y)) = (&la.attn, &lb.attn) {
                sum += x.overlap(y) as f64;
                n += 1;
            }
            if let (Some(x), Some(y)) = (&la.mlp, &lb.mlp) {
                sum += x.overlap(y) as f64;
                n += 1;
            }
        }
        (n > 0).then(|| (sum / n as f64) as f32)
    }

    /// Fold the per-layer plans recorded by the last inline prediction into
    /// the replayable cache and update the drift detector.
    fn finalize_building(&mut self) {
        let n_layers = self.attn.len();
        let Some((batch, eff)) = self.pending_shape.take() else {
            self.building.clear();
            return;
        };
        if self.building.len() < n_layers {
            // The predicted step never ran (request dropped); discard.
            self.building.clear();
            return;
        }
        // Micro-batch accumulation re-plans per shard; the cache keeps the
        // most recent shard's plan.
        let start = self.building.len() - n_layers;
        let layers: Vec<LayerPlan> = self.building.drain(..).skip(start).collect();
        let plan = SparsePlan { layers };
        if let Some(prev) = &self.cached {
            if prev.batch == batch && prev.eff == eff {
                if let Some(overlap) = Self::plan_overlap(&plan, &prev.plan) {
                    self.last_overlap = Some(overlap);
                    self.drifting = overlap < self.refresh.min_overlap;
                }
            }
        }
        self.cached = Some(CachedPlan { plan, batch, eff });
        self.age = 0;
    }
}

impl LayerPlanner for PredictedPolicy {
    fn plan_layer(&mut self, layer: usize, x: &Tensor, batch: usize, seq: usize) -> LayerPlan {
        let mut plan = LayerPlan::default();
        if self.enable_attn {
            let masks = self.attn[layer].predict_masks(x, batch, seq, self.block_size);
            let specs: Vec<PatternSpec> = masks
                .iter()
                .map(|m| self.pool.best_match(m, self.attn_min_recall).0)
                .collect();
            plan.attn = Some(Arc::new(self.pool.combine(seq / self.block_size, &specs)));
        }
        if self.enable_mlp {
            plan.mlp = Some(Arc::new(self.mlp[layer].predict(x)));
        }
        // Record for the cross-step plan cache (Arc clones — cheap).
        self.building.push(plan.clone());
        plan
    }
}

impl SparsityPolicy for PredictedPolicy {
    fn name(&self) -> &'static str {
        "predicted"
    }

    fn metered(&self) -> bool {
        // Plan-cache bookkeeping (finalise + overlap) is prediction-side
        // work; metering it keeps the Fig. 10 predict column honest.
        true
    }

    fn source<'a>(
        &'a mut self,
        model: &mut TransformerModel,
        _ids: &[u32],
        batch: usize,
        seq: usize,
    ) -> PlanSource<'a> {
        let eff = model.effective_seq(seq);
        assert_eq!(eff % self.block_size, 0, "seq must be block-aligned");
        self.pool.add_grid(eff / self.block_size);
        self.finalize_building();
        let reusable = self.refresh.interval > 1
            && !self.drifting
            && self.age + 1 < self.refresh.interval
            && self
                .cached
                .as_ref()
                .is_some_and(|c| c.batch == batch && c.eff == eff);
        if reusable {
            self.age += 1;
            self.reused_steps += 1;
            let cached = self.cached.as_ref().expect("reusable implies cached");
            PlanSource::Provided(&cached.plan)
        } else {
            self.predicted_steps += 1;
            self.pending_shape = Some((batch, eff));
            PlanSource::Planner(self)
        }
    }
}

/// Exposer ground truth: a dense capture pass answers exactly which blocks
/// matter for *this* batch, then the same pooled-pattern machinery the
/// predictors use converts the masks into an executable plan.
pub struct OraclePolicy {
    exposer: Exposer,
    pool: PatternPool,
    block_size: usize,
    attn_min_recall: f32,
    enable_attn: bool,
    enable_mlp: bool,
    plan: SparsePlan,
}

impl OraclePolicy {
    pub fn new(
        block_size: usize,
        attn_prob_threshold: f32,
        mlp_threshold: f32,
        attn_min_recall: f32,
        enable_attn: bool,
        enable_mlp: bool,
    ) -> Self {
        OraclePolicy {
            exposer: Exposer::new(block_size, attn_prob_threshold, mlp_threshold),
            pool: PatternPool::default_pool(block_size, &[]),
            block_size,
            attn_min_recall,
            enable_attn,
            enable_mlp,
            plan: SparsePlan::default(),
        }
    }
}

impl SparsityPolicy for OraclePolicy {
    fn name(&self) -> &'static str {
        "oracle"
    }

    fn metered(&self) -> bool {
        true // the capture pass is real prediction overhead
    }

    fn batch_specific(&self) -> bool {
        true // the plan is exact ground truth for this batch only
    }

    fn source<'a>(
        &'a mut self,
        model: &mut TransformerModel,
        ids: &[u32],
        batch: usize,
        seq: usize,
    ) -> PlanSource<'a> {
        let eff = model.effective_seq(seq);
        assert_eq!(eff % self.block_size, 0, "seq must be block-aligned");
        let n = eff / self.block_size;
        self.pool.add_grid(n);
        let mlp_on = self.enable_mlp && model.config.activation == Activation::Relu;
        let heads = model.config.n_heads;
        let caps = model
            .execute(StepRequest::capture(
                ids,
                batch,
                seq,
                CaptureConfig {
                    attn: self.enable_attn,
                    mlp: mlp_on,
                },
            ))
            .captures
            .expect("capture mode records captures");
        let mut plan = SparsePlan::dense(model.config.n_layers);
        for (layer, cap) in caps.iter().enumerate() {
            if let Some(probs) = &cap.attn_probs {
                let masks = self.exposer.attention_head_masks(probs, batch, heads, eff);
                let specs: Vec<PatternSpec> = masks
                    .iter()
                    .map(|m| self.pool.best_match(m, self.attn_min_recall).0)
                    .collect();
                plan.layers[layer].attn = Some(Arc::new(self.pool.combine(n, &specs)));
            }
            if let Some(acts) = &cap.mlp_activations {
                let imp = self.exposer.mlp_block_importance(acts);
                plan.layers[layer].mlp = Some(Arc::new(self.exposer.mlp_filter(&imp)));
            }
        }
        self.plan = plan;
        PlanSource::Provided(&self.plan)
    }
}

/// Which side a [`RandomPolicy`] randomises (the other runs dense).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RandomTarget {
    /// Random attention block placement at roughly predictor density.
    Attention,
    /// Random MLP neuron-block subsets (half the blocks).
    Mlp,
}

/// Random patterns with the same compute budget but the wrong blocks — the
/// paper's Fig. 11a ablation arms. Each step draws a fresh plan from a
/// deterministic per-step seed.
pub struct RandomPolicy {
    target: RandomTarget,
    block_size: usize,
    seed: u64,
    counter: u64,
    plan: SparsePlan,
}

impl RandomPolicy {
    pub fn new(target: RandomTarget, block_size: usize, seed: u64) -> Self {
        RandomPolicy {
            target,
            block_size,
            seed,
            counter: 0,
            plan: SparsePlan::default(),
        }
    }
}

impl SparsityPolicy for RandomPolicy {
    fn name(&self) -> &'static str {
        match self.target {
            RandomTarget::Attention => "random-attn",
            RandomTarget::Mlp => "random-mlp",
        }
    }

    fn source<'a>(
        &'a mut self,
        model: &mut TransformerModel,
        _ids: &[u32],
        _batch: usize,
        seq: usize,
    ) -> PlanSource<'a> {
        use rand::Rng;
        let eff = model.effective_seq(seq);
        assert_eq!(eff % self.block_size, 0, "seq must be block-aligned");
        self.counter += 1;
        let mut rng = lx_tensor::rng::seeded(self.seed ^ self.counter);
        let n = eff / self.block_size;
        let heads = model.config.n_heads;
        let n_blk = model.config.d_ff / self.block_size;
        let mut plan = SparsePlan::dense(model.config.n_layers);
        for layer in plan.layers.iter_mut() {
            match self.target {
                RandomTarget::Attention => {
                    // Truly random block placement with roughly the density
                    // the predictors would pick — same compute budget, wrong
                    // blocks (the paper's "random sparse pattern" arm).
                    let layouts: Vec<Arc<lx_sparse::BlockCsr>> = (0..heads)
                        .map(|_| {
                            let mut mask = lx_sparse::BlockMask::square(n);
                            for i in 0..n {
                                mask.set(i, i, true);
                                for j in 0..i {
                                    if rng.gen::<f32>() < 0.25 {
                                        mask.set(i, j, true);
                                    }
                                }
                            }
                            Arc::new(lx_sparse::BlockCsr::from_mask(&mask, self.block_size))
                        })
                        .collect();
                    layer.attn = Some(Arc::new(lx_sparse::MultiHeadLayout::combine(layouts)));
                }
                RandomTarget::Mlp => {
                    let keep = (n_blk / 2).max(1);
                    let mut idx: Vec<u32> = (0..n_blk as u32).collect();
                    for i in (1..idx.len()).rev() {
                        idx.swap(i, rng.gen_range(0..=i));
                    }
                    idx.truncate(keep);
                    layer.mlp = Some(Arc::new(NeuronBlockSet::from_indices(
                        idx,
                        n_blk,
                        self.block_size,
                    )));
                }
            }
        }
        self.plan = plan;
        PlanSource::Provided(&self.plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lx_model::{prompt_aware_targets, Sgd, StepOutcome};

    fn tiny() -> TransformerModel {
        let mut cfg = ModelConfig::test_tiny();
        cfg.d_ff = 32;
        TransformerModel::new(cfg, 5)
    }

    fn step(model: &mut TransformerModel, policy: &mut dyn SparsityPolicy) -> StepOutcome {
        let ids: Vec<u32> = lx_tensor::rng::uniform_vec(2 * 16, 0.0, 64.0, 3)
            .into_iter()
            .map(|v| v as u32)
            .collect();
        let targets = prompt_aware_targets(&ids, 2, 16, 0);
        let mut opt = Sgd::new(0.01);
        let source = policy.source(model, &ids, 2, 16);
        model.execute(StepRequest::train(&ids, &targets, 2, 16, &mut opt).plan_source(source))
    }

    #[test]
    fn dense_policy_reports_no_densities() {
        let mut m = tiny();
        let out = step(&mut m, &mut DensePolicy);
        assert!(out.attn_density.is_none());
        assert!(out.mlp_density.is_none());
        assert!(out.loss.is_finite());
    }

    #[test]
    fn oracle_policy_plans_from_ground_truth() {
        let mut m = tiny();
        let mut oracle = OraclePolicy::new(4, 0.05, 0.3, 0.95, true, true);
        let out = step(&mut m, &mut oracle);
        let attn = out.attn_density.expect("oracle attention plan");
        let mlp = out.mlp_density.expect("oracle MLP plan");
        assert!(attn > 0.0 && attn <= 1.0);
        assert!(mlp > 0.0 && mlp <= 1.0);
        assert!(out.loss.is_finite());
    }

    #[test]
    fn random_policies_randomise_exactly_one_side() {
        let mut m = tiny();
        let mut ra = RandomPolicy::new(RandomTarget::Attention, 4, 9);
        let out = step(&mut m, &mut ra);
        assert!(out.attn_density.is_some());
        assert!(out.mlp_density.is_none());
        let mut rm = RandomPolicy::new(RandomTarget::Mlp, 4, 9);
        let out = step(&mut m, &mut rm);
        assert!(out.attn_density.is_none());
        assert!((out.mlp_density.unwrap() - 0.5).abs() < 0.2);
    }

    #[test]
    fn random_policy_draws_a_fresh_plan_each_step() {
        let mut m = tiny();
        let mut ra = RandomPolicy::new(RandomTarget::Attention, 4, 9);
        let a = step(&mut m, &mut ra).attn_density;
        let b = step(&mut m, &mut ra).attn_density;
        // Densities are means over random draws; they *can* tie, so compare
        // the stashed plans' layouts instead.
        let _ = (a, b);
        assert_eq!(ra.counter, 2, "per-step counter advances");
    }

    #[test]
    fn predicted_policy_reuses_cached_plans_on_interval() {
        let mut m = tiny();
        let mut cfg = ModelConfig::test_tiny();
        cfg.d_ff = 32;
        let mut p = PredictedPolicy::new(&cfg, 4, 4, 0.95, true, true, 7);
        p.set_refresh(PlanRefreshConfig {
            interval: 4,
            min_overlap: 0.0, // never suspend reuse
        });
        for _ in 0..8 {
            let out = step(&mut m, &mut p);
            assert!(out.loss.is_finite());
            assert!(
                out.mlp_density.is_some(),
                "reused plans still execute sparse"
            );
        }
        let stats = p.plan_reuse_stats();
        assert_eq!(stats.predicted_steps, 2, "{stats:?}");
        assert_eq!(stats.reused_steps, 6, "{stats:?}");
        assert!(
            stats.last_overlap.is_some(),
            "two predictions happened, so overlap is measured: {stats:?}"
        );
        assert!(!stats.drifting);
    }

    #[test]
    fn drift_detection_suspends_reuse() {
        let mut m = tiny();
        let mut cfg = ModelConfig::test_tiny();
        cfg.d_ff = 32;
        let mut p = PredictedPolicy::new(&cfg, 4, 4, 0.95, true, true, 7);
        // An unreachable overlap bar: every measured overlap counts as drift,
        // so after the second prediction the policy re-predicts every step.
        p.set_refresh(PlanRefreshConfig {
            interval: 4,
            min_overlap: 1.1,
        });
        for _ in 0..8 {
            step(&mut m, &mut p);
        }
        let stats = p.plan_reuse_stats();
        assert!(stats.drifting, "{stats:?}");
        assert_eq!(stats.predicted_steps, 5, "{stats:?}"); // 1, 5, 6, 7, 8
        assert_eq!(stats.reused_steps, 3, "{stats:?}"); // 2, 3, 4
    }

    #[test]
    fn refresh_interval_one_predicts_every_step() {
        let mut m = tiny();
        let mut cfg = ModelConfig::test_tiny();
        cfg.d_ff = 32;
        let mut p = PredictedPolicy::new(&cfg, 4, 4, 0.95, true, true, 7);
        assert_eq!(p.refresh(), PlanRefreshConfig::default());
        for _ in 0..4 {
            step(&mut m, &mut p);
        }
        let stats = p.plan_reuse_stats();
        assert_eq!(stats.predicted_steps, 4);
        assert_eq!(stats.reused_steps, 0);
    }

    #[test]
    fn predicted_policy_gates_mlp_on_activation() {
        let mut cfg = ModelConfig::test_tiny();
        cfg.activation = Activation::Gelu;
        let p = PredictedPolicy::new(&cfg, 4, 4, 0.95, true, true, 7);
        assert!(!p.enable_mlp, "GeLU model must run MLP dense");
    }
}
