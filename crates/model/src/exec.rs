//! The unified execution API: one typed request, one entry point.
//!
//! Every pass through the model — training, gradient accumulation,
//! evaluation, calibration capture, candidate scoring — is described by a
//! [`StepRequest`] and executed by [`TransformerModel::execute`], which
//! returns a [`StepOutcome`] carrying the loss, optional logits/captures,
//! per-phase timings (the paper's Table I / Fig. 10 breakdown), and the
//! realised attention/MLP densities.
//!
//! The sparsity decision is a first-class input: [`PlanSource`] selects
//! between the dense baseline, a pre-built [`SparsePlan`], and inline
//! per-layer planning through a [`LayerPlanner`] (the paper's online
//! prediction point, where each layer's pattern is predicted from the block
//! input immediately before the block runs).
//!
//! ```no_run
//! use lx_model::{ModelConfig, Sgd, StepRequest, TransformerModel};
//!
//! let mut model = TransformerModel::new(ModelConfig::test_tiny(), 42);
//! let ids: Vec<u32> = (0..16).collect();
//! let targets = lx_model::prompt_aware_targets(&ids, 2, 8, 0);
//! let mut opt = Sgd::new(0.05);
//! let out = model.execute(StepRequest::train(&ids, &targets, 2, 8, &mut opt));
//! println!("loss {:.3} in {:?}", out.loss, out.total());
//! ```

use crate::loss::{self, IGNORE_INDEX};
use crate::model::{CaptureConfig, Captures, LayerPlanner, TransformerModel};
use crate::optim::{LossScaler, Optimizer};
use crate::plan::SparsePlan;
use lx_obs::{registry, Histogram, Span, TimedSpan};
use lx_tensor::{Tensor, Workspace};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Always-on `model.step.ns` latency histogram (one record per [`execute`]
/// call — negligible next to a step, and it feeds the p50/p99 columns of
/// `step_bench --json` and the serve exposition endpoint).
///
/// [`execute`]: TransformerModel::execute
fn step_ns_histogram() -> &'static Arc<Histogram> {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    H.get_or_init(|| registry().histogram("model.step.ns"))
}

/// One shard of a gradient-accumulation step: token ids plus loss targets,
/// both for the request's shared `(batch, seq)` shape.
#[derive(Debug, Clone, Copy)]
pub struct MicroBatch<'a> {
    pub ids: &'a [u32],
    pub targets: &'a [i32],
}

/// Where the sparse execution plan for a step comes from.
pub enum PlanSource<'a> {
    /// Dense baseline: no sparsity, every block runs full.
    Dense,
    /// A pre-built plan (oracle/random ablations, replayed plans).
    Provided(&'a SparsePlan),
    /// Inline per-layer planning: `plan_layer` is called with each block's
    /// input right before that block executes. Planning time is metered
    /// separately into [`StepOutcome::predict`].
    Planner(&'a mut dyn LayerPlanner),
}

/// What a step does after the forward pass.
pub enum Mode<'a> {
    /// Forward, loss, backward, optimizer step. With `loss_scale`, the loss
    /// gradient is scaled before backward and gradients are unscaled and
    /// overflow-checked before the optimizer runs (mixed-precision training);
    /// an overflow skips the step and sets [`StepOutcome::skipped`].
    Train {
        optimizer: &'a mut dyn Optimizer,
        loss_scale: Option<&'a mut LossScaler>,
    },
    /// Forward, loss, backward — gradients accumulate in the parameters but
    /// no optimizer runs (data-parallel workers, custom update loops).
    Grad,
    /// Forward and loss only; model state is untouched.
    Eval,
    /// Dense forward recording per-layer calibration captures.
    Capture(CaptureConfig),
    /// Forward scoring: [`StepOutcome::loss`] is the *summed log-probability*
    /// of the non-ignored targets (the lm-eval candidate-scoring primitive).
    Score,
}

/// Per-micro-batch preparation hook: `(model, shard index)` immediately
/// before that shard's forward pass (see [`StepRequest::on_micro_batch`]).
pub type PrepareHook<'a> = &'a mut dyn FnMut(&mut TransformerModel, usize);

/// A typed description of one execution step. Build with the mode
/// constructors, then chain [`Self::plan`]/[`Self::plan_source`],
/// [`Self::micro_batch`], [`Self::loss_scale`] and [`Self::keep_logits`].
pub struct StepRequest<'a> {
    pub(crate) batches: Vec<MicroBatch<'a>>,
    pub(crate) batch: usize,
    pub(crate) seq: usize,
    pub(crate) mode: Mode<'a>,
    pub(crate) plan: PlanSource<'a>,
    pub(crate) keep_logits: bool,
    pub(crate) workspace: Option<&'a mut Workspace>,
    pub(crate) prepare: Option<PrepareHook<'a>>,
}

impl<'a> StepRequest<'a> {
    fn new(ids: &'a [u32], targets: &'a [i32], batch: usize, seq: usize, mode: Mode<'a>) -> Self {
        StepRequest {
            batches: vec![MicroBatch { ids, targets }],
            batch,
            seq,
            mode,
            plan: PlanSource::Dense,
            keep_logits: false,
            workspace: None,
            prepare: None,
        }
    }

    /// A full training step: forward, cross-entropy, backward, `optimizer`.
    pub fn train(
        ids: &'a [u32],
        targets: &'a [i32],
        batch: usize,
        seq: usize,
        optimizer: &'a mut dyn Optimizer,
    ) -> Self {
        Self::new(
            ids,
            targets,
            batch,
            seq,
            Mode::Train {
                optimizer,
                loss_scale: None,
            },
        )
    }

    /// Forward + backward without an optimizer step: gradients accumulate in
    /// the trainable parameters (the request zeroes them first).
    pub fn grad(ids: &'a [u32], targets: &'a [i32], batch: usize, seq: usize) -> Self {
        Self::new(ids, targets, batch, seq, Mode::Grad)
    }

    /// Evaluation pass: forward and loss only, no state change.
    pub fn eval(ids: &'a [u32], targets: &'a [i32], batch: usize, seq: usize) -> Self {
        Self::new(ids, targets, batch, seq, Mode::Eval)
    }

    /// Pure inference: evaluation pass with no targets that keeps the logits.
    pub fn infer(ids: &'a [u32], batch: usize, seq: usize) -> Self {
        Self::new(ids, &[], batch, seq, Mode::Eval).keep_logits()
    }

    /// Dense calibration pass recording per-layer captures.
    pub fn capture(ids: &'a [u32], batch: usize, seq: usize, cfg: CaptureConfig) -> Self {
        Self::new(ids, &[], batch, seq, Mode::Capture(cfg))
    }

    /// Candidate-scoring pass: the outcome's `loss` is the summed
    /// log-probability of the non-ignored `targets` (see [`score_parts`]).
    pub fn score(ids: &'a [u32], targets: &'a [i32], batch: usize, seq: usize) -> Self {
        Self::new(ids, targets, batch, seq, Mode::Score)
    }

    /// Execute with a pre-built sparse plan.
    pub fn plan(mut self, plan: &'a SparsePlan) -> Self {
        self.plan = PlanSource::Provided(plan);
        self
    }

    /// Execute with an explicit [`PlanSource`].
    pub fn plan_source(mut self, source: PlanSource<'a>) -> Self {
        self.plan = source;
        self
    }

    /// Append a micro-batch. In Train/Grad modes this is gradient
    /// accumulation: gradients accumulate across all micro-batches and the
    /// optimizer runs once, weighting each shard by its share of counted
    /// targets so the update matches one fused batch. In Eval/Score modes it
    /// is batch *fusion*: every shard runs an independent stateless pass and
    /// its raw loss is recorded in [`StepOutcome::micro_losses`],
    /// bit-identical to running each shard as its own request.
    pub fn micro_batch(mut self, ids: &'a [u32], targets: &'a [i32]) -> Self {
        self.batches.push(MicroBatch { ids, targets });
        self
    }

    /// Install a per-micro-batch preparation hook (stateless Eval/Score
    /// modes only): called with the model and the micro-batch index
    /// immediately before that shard's forward pass. This is the
    /// cross-tenant fusion vehicle — `lx-cluster` swaps tenant adapters
    /// between the fused shards of one request, so jobs from different
    /// tenants share a single execution step.
    pub fn on_micro_batch(mut self, hook: PrepareHook<'a>) -> Self {
        self.prepare = Some(hook);
        self
    }

    /// Enable dynamic loss scaling (Train mode only).
    pub fn loss_scale(mut self, scaler: &'a mut LossScaler) -> Self {
        match &mut self.mode {
            Mode::Train { loss_scale, .. } => *loss_scale = Some(scaler),
            _ => panic!("loss_scale applies to Mode::Train only"),
        }
        self
    }

    /// Return the last micro-batch's logits in the outcome.
    pub fn keep_logits(mut self) -> Self {
        self.keep_logits = true;
        self
    }

    /// Execute inside `ws` instead of the model's own step workspace —
    /// `lx-serve`-style callers keep one workspace per tenant so pooled
    /// buffers stay warm across interleaved scheduler slices.
    pub fn workspace(mut self, ws: &'a mut Workspace) -> Self {
        self.workspace = Some(ws);
        self
    }
}

/// Everything one step produced: loss, optional logits/captures, the plan
/// that was used, per-phase wall times and realised densities.
#[derive(Debug, Default)]
pub struct StepOutcome {
    /// Mean cross-entropy over counted targets (Train/Grad/Eval), the summed
    /// log-probability (Score), or 0 (Capture / target-less Eval).
    pub loss: f32,
    /// Last micro-batch's logits, when requested via `keep_logits`.
    pub logits: Option<Tensor>,
    /// Per-layer calibration captures (Capture mode).
    pub captures: Option<Captures>,
    /// The plan an inline planner produced (last micro-batch).
    pub plan: Option<SparsePlan>,
    /// Time spent inside the planner (`PlanSource::Planner` only).
    pub predict: Duration,
    pub forward: Duration,
    pub backward: Duration,
    pub optim: Duration,
    /// Mean attention density of the executed plan(s); `None` when dense.
    pub attn_density: Option<f32>,
    /// Mean MLP neuron-block density of the executed plan(s).
    pub mlp_density: Option<f32>,
    /// The optimizer step was skipped because a scaled gradient overflowed
    /// (the loss scaler has already backed off).
    pub skipped: bool,
    /// Number of micro-batches this step accumulated over.
    pub micro_batches: usize,
    /// Per-micro-batch raw loss, one entry per shard in request order: the
    /// unweighted shard cross-entropy (Train/Grad/Eval), the shard's summed
    /// log-probability (Score), or 0 (Capture / target-less Eval). For fused
    /// Eval/Score requests each entry is bit-identical to running that shard
    /// as its own single-batch request — the de-fusion contract `lx-cluster`
    /// relies on to hand every tenant exactly the loss it would have seen
    /// unfused.
    pub micro_losses: Vec<f32>,
}

impl StepOutcome {
    pub fn total(&self) -> Duration {
        self.predict + self.forward + self.backward + self.optim
    }
}

fn merge_density(acc: Option<f32>, next: Option<f32>, n_seen: usize) -> Option<f32> {
    match (acc, next) {
        (Some(a), Some(b)) => Some((a * n_seen as f32 + b) / (n_seen as f32 + 1.0)),
        (a, b) => a.or(b),
    }
}

impl TransformerModel {
    /// Execute one [`StepRequest`]. The single entry point for every pass
    /// through the model; see the [module docs](self) for the mode catalogue.
    ///
    /// The whole step — all micro-batches, forward, backward, optimizer —
    /// runs inside a step-workspace scope (the request's override or the
    /// model's own pool), so after warmup a steady-state step performs zero
    /// heap tensor allocations; see [`lx_tensor::Workspace`].
    pub fn execute(&mut self, mut req: StepRequest<'_>) -> StepOutcome {
        match req.workspace.take() {
            Some(ws) => ws.scope(|| self.execute_inner(req)),
            None => {
                let mut ws = std::mem::take(&mut self.workspace);
                let out = ws.scope(|| self.execute_inner(req));
                self.workspace = ws;
                out
            }
        }
    }

    fn execute_inner(&mut self, req: StepRequest<'_>) -> StepOutcome {
        let _step_span = Span::enter("model.step").cat("step");
        let t_step = Instant::now();
        let StepRequest {
            batches,
            batch,
            seq,
            mode,
            mut plan,
            keep_logits,
            workspace: _,
            mut prepare,
        } = req;
        assert!(!batches.is_empty(), "StepRequest needs at least one batch");
        let eff = self.effective_seq(seq);
        let grad_mode = matches!(mode, Mode::Train { .. } | Mode::Grad);
        let stateless_mode = matches!(mode, Mode::Eval | Mode::Score);
        assert!(
            batches.len() == 1 || grad_mode || stateless_mode,
            "multi-batch requests need a gradient mode (Train/Grad accumulation) \
             or a stateless mode (Eval/Score fusion); Capture takes one batch"
        );
        assert!(
            prepare.is_none() || stateless_mode,
            "on_micro_batch hooks apply to stateless Eval/Score fusion only"
        );
        if matches!(mode, Mode::Capture(_)) {
            assert!(
                matches!(plan, PlanSource::Dense),
                "Capture mode records dense ground truth; use PlanSource::Dense"
            );
        }
        for mb in &batches {
            assert_eq!(mb.ids.len(), batch * seq, "ids length must be batch*seq");
            if !mb.targets.is_empty()
                || matches!(mode, Mode::Train { .. } | Mode::Grad | Mode::Score)
            {
                assert_eq!(
                    mb.targets.len(),
                    batch * eff,
                    "targets length must be batch*effective_seq"
                );
            }
        }
        if grad_mode {
            self.zero_grads();
        }
        // Per-shard weights: each micro-batch's gradient contribution is its
        // share of the counted (non-ignored) targets, so N accumulated
        // micro-batches match one fused batch.
        let counted: Vec<usize> = batches
            .iter()
            .map(|m| m.targets.iter().filter(|&&t| t != IGNORE_INDEX).count())
            .collect();
        let total_counted: usize = counted.iter().sum();

        let n_micro = batches.len();
        let mut out = StepOutcome {
            micro_batches: n_micro,
            ..StepOutcome::default()
        };
        let mut loss_acc = 0.0f64;
        let capture_cfg = match mode {
            Mode::Capture(cfg) => Some(cfg),
            _ => None,
        };
        for (i, mb) in batches.iter().enumerate() {
            let _mb_span = Span::enter("model.micro_batch").cat("step").index(i as u64);
            // Cross-tenant fusion point: let the caller reconfigure the model
            // (swap the attached adapter) before this shard's forward pass.
            if let Some(hook) = prepare.as_mut() {
                hook(self, i);
            }
            // The forward span covers the whole pass (planner included); the
            // planner's own time is metered by the `model.predict` spans it
            // emits, so `out.forward` is the span duration minus `pred_t` —
            // both sides of the subtraction are exact span nanoseconds,
            // keeping the outcome bit-identical to the trace.
            let fwd_span = TimedSpan::enter("model.forward_pass")
                .cat("step")
                .index(i as u64);
            let (logits, used, pred_t) =
                self.forward_pass(mb.ids, batch, seq, &mut plan, capture_cfg);
            out.predict += pred_t;
            out.forward += fwd_span.finish().saturating_sub(pred_t);
            let densities = match (&used, &plan) {
                (Some(u), _) => Some((u.mean_attn_density(), u.mean_mlp_density())),
                (None, PlanSource::Provided(p)) => {
                    Some((p.mean_attn_density(), p.mean_mlp_density()))
                }
                _ => None,
            };
            if let Some((a, m)) = densities {
                out.attn_density = merge_density(out.attn_density, a, i);
                out.mlp_density = merge_density(out.mlp_density, m, i);
            }
            if grad_mode {
                let (loss, mut dlogits) = loss::cross_entropy(&logits, mb.targets);
                let weight = if total_counted == 0 {
                    0.0
                } else {
                    counted[i] as f32 / total_counted as f32
                };
                let scale = match &mode {
                    Mode::Train {
                        loss_scale: Some(s),
                        ..
                    } => weight * s.scale(),
                    _ => weight,
                };
                if scale != 1.0 {
                    dlogits.scale(scale);
                }
                let bwd_span = TimedSpan::enter("model.backward")
                    .cat("step")
                    .index(i as u64);
                self.backward(&dlogits);
                out.backward += bwd_span.finish();
                loss_acc += loss as f64 * weight as f64;
                out.micro_losses.push(loss);
            } else {
                match mode {
                    Mode::Eval => {
                        let shard = if mb.targets.is_empty() {
                            0.0
                        } else {
                            loss::cross_entropy_loss(&logits, mb.targets)
                        };
                        out.micro_losses.push(shard);
                        if !mb.targets.is_empty() {
                            // Single-batch requests keep the raw shard loss
                            // (bit-identical to the pre-fusion behaviour);
                            // fused requests aggregate by counted-target share
                            // like gradient accumulation does.
                            if n_micro == 1 {
                                loss_acc += shard as f64;
                            } else if total_counted > 0 {
                                loss_acc +=
                                    shard as f64 * (counted[i] as f64 / total_counted as f64);
                            }
                        }
                        self.clear_step_cache();
                    }
                    Mode::Score => {
                        let shard = loss::sequence_logprob(&logits, mb.targets);
                        out.micro_losses.push(shard);
                        loss_acc += shard as f64;
                        self.clear_step_cache();
                    }
                    Mode::Capture(_) => {
                        out.captures = Some(self.take_captures());
                        out.micro_losses.push(0.0);
                        self.clear_step_cache();
                    }
                    Mode::Train { .. } | Mode::Grad => unreachable!(),
                }
            }
            if i + 1 == n_micro {
                out.plan = used;
                if keep_logits {
                    out.logits = Some(logits);
                }
            }
        }
        if let Mode::Train {
            optimizer,
            loss_scale,
        } = mode
        {
            let opt_span = TimedSpan::enter("model.optimizer").cat("step");
            match loss_scale {
                Some(scaler) => {
                    let finite = scaler.unscale(&mut |f| self.for_each_param(f));
                    if finite {
                        optimizer.begin_step();
                        self.for_each_param(&mut |p| optimizer.update(p));
                        scaler.update(false);
                    } else {
                        scaler.update(true);
                        out.skipped = true;
                    }
                }
                None => {
                    optimizer.begin_step();
                    self.for_each_param(&mut |p| optimizer.update(p));
                }
            }
            out.optim = opt_span.finish();
        }
        out.loss = loss_acc as f32;
        step_ns_histogram().record_duration(t_step.elapsed());
        out
    }
}

/// Build the `(ids, targets)` pair for scoring `continuation` given `prompt`
/// with [`Mode::Score`]: rows covering the continuation get targets (row *i*
/// predicts token *i+1*), everything else is ignored. `prompt_prefix` is the
/// model's soft-prompt length ([`crate::embedding::Embedding::prompt_len`]).
pub fn score_parts(
    prompt: &[u32],
    continuation: &[u32],
    prompt_prefix: usize,
) -> (Vec<u32>, Vec<i32>) {
    assert!(!continuation.is_empty());
    let ids: Vec<u32> = prompt.iter().chain(continuation).copied().collect();
    let eff = ids.len() + prompt_prefix;
    let mut targets = vec![IGNORE_INDEX; eff];
    for (j, &tok) in continuation.iter().enumerate() {
        let pos = prompt_prefix + prompt.len() + j; // position of this token
        targets[pos - 1] = tok as i32; // predicted from the previous row
    }
    (ids, targets)
}

/// Log-probability of `continuation` given `prompt` (Table IV scoring) — a
/// thin composition of [`score_parts`] and a [`Mode::Score`] request.
pub fn score_continuation(
    model: &mut TransformerModel,
    prompt: &[u32],
    continuation: &[u32],
) -> f32 {
    let (ids, targets) = score_parts(prompt, continuation, model.embedding.prompt_len());
    let seq = prompt.len() + continuation.len();
    model
        .execute(StepRequest::score(&ids, &targets, 1, seq))
        .loss
}

// The equivalence proofs against the *legacy* entry points live here, inside
// the crate, because only this module can still spell out the exact private
// call sequences (`forward_pass` → `cross_entropy` → `backward` → optimizer)
// that `train_step`, `train_step_scaled` and `forward_planned` used to run.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::prompt_aware_targets;
    use crate::optim::Sgd;
    use crate::plan::LayerPlan;
    use crate::ModelConfig;
    use lx_sparse::{BlockCsr, MultiHeadLayout, NeuronBlockSet, PatternSpec};
    use std::sync::Arc;

    const BATCH: usize = 2;
    const SEQ: usize = 8;
    const BLOCK: usize = 4;

    fn tiny() -> TransformerModel {
        TransformerModel::new(ModelConfig::test_tiny(), 42)
    }

    fn sample(seed: u64) -> (Vec<u32>, Vec<i32>) {
        let vocab = ModelConfig::test_tiny().vocab_size as f32;
        let ids: Vec<u32> = lx_tensor::rng::uniform_vec(BATCH * SEQ, 0.0, vocab, seed)
            .into_iter()
            .map(|v| v as u32)
            .collect();
        let targets = prompt_aware_targets(&ids, BATCH, SEQ, 0);
        (ids, targets)
    }

    fn trainable_values(m: &mut TransformerModel) -> Vec<(String, Vec<f32>)> {
        let mut out = Vec::new();
        m.for_each_param(&mut |p| {
            if p.trainable {
                out.push((p.name.clone(), p.value.as_slice().to_vec()));
            }
        });
        out
    }

    /// The exact sequence the removed `TransformerModel::train_step` ran.
    fn legacy_train_step(
        m: &mut TransformerModel,
        ids: &[u32],
        targets: &[i32],
        opt: &mut dyn crate::Optimizer,
    ) -> f32 {
        m.zero_grads();
        let (logits, _, _) = m.forward_pass(ids, BATCH, SEQ, &mut PlanSource::Dense, None);
        let (loss, dlogits) = loss::cross_entropy(&logits, targets);
        m.backward(&dlogits);
        opt.begin_step();
        m.for_each_param(&mut |p| opt.update(p));
        loss
    }

    /// The exact sequence the removed `train_step_scaled` ran.
    fn legacy_train_step_scaled(
        m: &mut TransformerModel,
        ids: &[u32],
        targets: &[i32],
        opt: &mut dyn crate::Optimizer,
        scaler: &mut LossScaler,
    ) -> Option<f32> {
        m.zero_grads();
        let (logits, _, _) = m.forward_pass(ids, BATCH, SEQ, &mut PlanSource::Dense, None);
        let (loss, mut dlogits) = loss::cross_entropy(&logits, targets);
        dlogits.scale(scaler.scale());
        m.backward(&dlogits);
        let finite = scaler.unscale(&mut |f| m.for_each_param(f));
        if !finite {
            scaler.update(true);
            return None;
        }
        opt.begin_step();
        m.for_each_param(&mut |p| opt.update(p));
        scaler.update(false);
        Some(loss)
    }

    #[test]
    fn execute_reproduces_legacy_train_step_bit_identically() {
        let mut a = tiny();
        let mut b = tiny();
        a.for_each_param(&mut |p| p.trainable = true);
        b.for_each_param(&mut |p| p.trainable = true);
        let mut opt_a = Sgd::new(0.05);
        let mut opt_b = Sgd::new(0.05);
        for step in 0..5u64 {
            let (ids, targets) = sample(100 + step);
            let new = a
                .execute(StepRequest::train(&ids, &targets, BATCH, SEQ, &mut opt_a))
                .loss;
            let old = legacy_train_step(&mut b, &ids, &targets, &mut opt_b);
            assert_eq!(new.to_bits(), old.to_bits(), "step {step} loss");
        }
        assert_eq!(
            trainable_values(&mut a),
            trainable_values(&mut b),
            "parameters must stay bit-identical"
        );
    }

    #[test]
    fn execute_reproduces_legacy_train_step_scaled_bit_identically() {
        let run = |legacy: bool| -> (Vec<f32>, Vec<(String, Vec<f32>)>) {
            let mut m = tiny();
            m.freeze_all();
            for block in &mut m.blocks {
                block.attn.wq.attach_lora(4, 8.0, 31);
                block.attn.wv.attach_lora(4, 8.0, 32);
            }
            let mut opt = crate::optim::Adam::new(0.02);
            let mut scaler = LossScaler::default();
            let mut losses = Vec::new();
            for step in 0..6u64 {
                let (ids, targets) = sample(200 + step);
                let loss = if legacy {
                    legacy_train_step_scaled(&mut m, &ids, &targets, &mut opt, &mut scaler)
                } else {
                    let out = m.execute(
                        StepRequest::train(&ids, &targets, BATCH, SEQ, &mut opt)
                            .loss_scale(&mut scaler),
                    );
                    (!out.skipped).then_some(out.loss)
                };
                losses.push(loss.expect("no overflow expected"));
            }
            (losses, trainable_values(&mut m))
        };
        let (loss_new, params_new) = run(false);
        let (loss_old, params_old) = run(true);
        assert_eq!(loss_new, loss_old, "scaled losses must be bit-identical");
        assert_eq!(params_new, params_old);
    }

    /// A deterministic inline planner (causal attention, odd neuron blocks).
    struct FixedPlanner;

    impl FixedPlanner {
        fn layer_plan(seq: usize, d_ff: usize) -> LayerPlan {
            let csr = Arc::new(BlockCsr::from_mask(
                &PatternSpec::Causal.mask(seq / BLOCK),
                BLOCK,
            ));
            let n_blk = d_ff / BLOCK;
            LayerPlan {
                attn: Some(Arc::new(MultiHeadLayout::combine(vec![csr; 2]))),
                mlp: Some(Arc::new(NeuronBlockSet::from_indices(
                    (0..n_blk as u32).filter(|i| i % 2 == 1).collect(),
                    n_blk,
                    BLOCK,
                ))),
            }
        }
    }

    impl LayerPlanner for FixedPlanner {
        fn plan_layer(&mut self, _layer: usize, _x: &Tensor, _b: usize, seq: usize) -> LayerPlan {
            Self::layer_plan(seq, ModelConfig::test_tiny().d_ff)
        }
    }

    #[test]
    fn execute_planner_reproduces_legacy_forward_planned_bit_identically() {
        // The removed `forward_planned` interleaved plan_layer with each
        // block's forward; `PlanSource::Planner` runs the same loop. Against
        // it: the same per-layer plans pre-built and provided up front.
        let (ids, targets) = sample(300);
        let cfg = ModelConfig::test_tiny();
        let mut via_planner = tiny();
        let mut planner = FixedPlanner;
        let out_a = via_planner.execute(
            StepRequest::grad(&ids, &targets, BATCH, SEQ)
                .plan_source(PlanSource::Planner(&mut planner))
                .keep_logits(),
        );
        let mut provided = SparsePlan::default();
        for _ in 0..cfg.n_layers {
            provided
                .layers
                .push(FixedPlanner::layer_plan(SEQ, cfg.d_ff));
        }
        let mut via_plan = tiny();
        let out_b = via_plan.execute(
            StepRequest::grad(&ids, &targets, BATCH, SEQ)
                .plan(&provided)
                .keep_logits(),
        );
        assert_eq!(
            out_a.logits.as_ref().unwrap().as_slice(),
            out_b.logits.as_ref().unwrap().as_slice(),
            "planner and provided plans must run the same sparse path"
        );
        assert_eq!(out_a.loss.to_bits(), out_b.loss.to_bits());
        assert_eq!(out_a.attn_density, out_b.attn_density);
        assert_eq!(out_a.mlp_density, out_b.mlp_density);
        let used = out_a.plan.expect("planner plan collected");
        assert_eq!(used.layers.len(), cfg.n_layers);
    }

    #[test]
    fn redemotion_across_precisions_does_not_serve_stale_slabs() {
        // Regression: switching the storage plan between sparse steps (here
        // f16 → 2:4 structured-sparse) must invalidate the cross-step MLP
        // slab caches, or the post-switch step would serve slabs decoded
        // from the *previous* storage. Oracle: a twin that takes the same
        // precision path but never built a cache under the old storage.
        let (ids, _) = sample(400);
        let cfg = ModelConfig::test_tiny();
        let mut provided = SparsePlan::default();
        for _ in 0..cfg.n_layers {
            provided
                .layers
                .push(FixedPlanner::layer_plan(SEQ, cfg.d_ff));
        }
        let mut m = tiny();
        m.freeze_all();
        m.set_precision(crate::Precision::F16Frozen);
        // Builds the f16 slab caches.
        let _ = m.execute(StepRequest::infer(&ids, BATCH, SEQ).plan(&provided));
        m.set_precision(crate::Precision::Nm24Frozen);
        let redemoted = m.execute(StepRequest::infer(&ids, BATCH, SEQ).plan(&provided));
        let mut fresh = tiny();
        fresh.freeze_all();
        fresh.set_precision(crate::Precision::F16Frozen);
        fresh.set_precision(crate::Precision::Nm24Frozen);
        let oracle = fresh.execute(StepRequest::infer(&ids, BATCH, SEQ).plan(&provided));
        assert_eq!(
            redemoted.logits.unwrap().as_slice(),
            oracle.logits.unwrap().as_slice(),
            "post-switch sparse step must not reuse slabs from the old storage"
        );
    }

    #[test]
    fn score_request_reproduces_legacy_score_continuation() {
        // The removed method built ids/targets by hand and called
        // `sequence_logprob` on a dense forward; `score_parts` + Mode::Score
        // is the same computation.
        let mut m = tiny();
        let prompt = [1u32, 2, 3, 4];
        let cont = [5u32, 6];
        let via_mode = score_continuation(&mut m, &prompt, &cont);
        let ids: Vec<u32> = prompt.iter().chain(&cont).copied().collect();
        let (logits, _, _) = m.forward_pass(&ids, 1, ids.len(), &mut PlanSource::Dense, None);
        m.clear_step_cache();
        let (_, targets) = score_parts(&prompt, &cont, 0);
        let legacy = loss::sequence_logprob(&logits, &targets);
        assert_eq!(via_mode.to_bits(), legacy.to_bits());
    }

    #[test]
    fn micro_batch_accumulation_matches_fused_batch() {
        // Two micro-batches of B rows vs one fused batch of 2B rows: the
        // weighted gradient accumulation must match the fused update to
        // f32 re-association tolerance.
        let (ids_a, t_a) = sample(400);
        let (ids_b, t_b) = sample(401);
        let fused_ids: Vec<u32> = ids_a.iter().chain(&ids_b).copied().collect();
        let fused_t: Vec<i32> = t_a.iter().chain(&t_b).copied().collect();

        let mut accum = tiny();
        let mut fused = tiny();
        accum.for_each_param(&mut |p| p.trainable = true);
        fused.for_each_param(&mut |p| p.trainable = true);
        let out_acc =
            accum.execute(StepRequest::grad(&ids_a, &t_a, BATCH, SEQ).micro_batch(&ids_b, &t_b));
        assert_eq!(out_acc.micro_batches, 2);
        let out_fused = fused.execute(StepRequest::grad(&fused_ids, &fused_t, 2 * BATCH, SEQ));
        assert!(
            (out_acc.loss - out_fused.loss).abs() <= 1e-5 * (1.0 + out_fused.loss.abs()),
            "losses: {} vs {}",
            out_acc.loss,
            out_fused.loss
        );
        let ga = trainable_grads(&mut accum);
        let gf = trainable_grads(&mut fused);
        assert_eq!(ga.len(), gf.len());
        for ((name, a), (_, f)) in ga.iter().zip(&gf) {
            for (x, y) in a.iter().zip(f) {
                assert!(
                    (x - y).abs() <= 1e-4 * (1.0 + y.abs()),
                    "{name}: accumulated grad {x} vs fused {y}"
                );
            }
        }
    }

    fn trainable_grads(m: &mut TransformerModel) -> Vec<(String, Vec<f32>)> {
        let mut out = Vec::new();
        m.for_each_param(&mut |p| {
            if p.trainable {
                out.push((
                    p.name.clone(),
                    p.grad
                        .as_ref()
                        .map(|g| g.as_slice().to_vec())
                        .unwrap_or_default(),
                ));
            }
        });
        out
    }

    #[test]
    fn eval_mode_leaves_the_model_untouched() {
        let mut m = tiny();
        m.for_each_param(&mut |p| p.trainable = true);
        let (ids, targets) = sample(500);
        let before = trainable_values(&mut m);
        let out = m.execute(StepRequest::eval(&ids, &targets, BATCH, SEQ));
        assert!(out.loss.is_finite());
        assert_eq!(before, trainable_values(&mut m));
        let mut grads = 0;
        m.for_each_param(&mut |p| {
            if p.grad.is_some() {
                grads += 1;
            }
        });
        assert_eq!(grads, 0, "eval must not touch gradients");
    }

    #[test]
    #[should_panic(expected = "Capture takes one batch")]
    fn accumulation_rejected_in_capture_mode() {
        let mut m = tiny();
        let (ids, _) = sample(600);
        m.execute(
            StepRequest::capture(&ids, BATCH, SEQ, CaptureConfig::default()).micro_batch(&ids, &[]),
        );
    }

    #[test]
    #[should_panic(expected = "stateless Eval/Score fusion only")]
    fn prepare_hook_rejected_in_gradient_modes() {
        let mut m = tiny();
        let (ids, targets) = sample(601);
        let mut hook = |_: &mut TransformerModel, _: usize| {};
        m.execute(StepRequest::grad(&ids, &targets, BATCH, SEQ).on_micro_batch(&mut hook));
    }

    #[test]
    fn fused_eval_micro_losses_are_bit_identical_to_separate_requests() {
        // The de-fusion contract: each shard of a fused Eval request must
        // report exactly the loss it would have produced as its own request.
        let shards: Vec<(Vec<u32>, Vec<i32>)> = (0..3).map(|k| sample(700 + k)).collect();
        let mut fused_model = tiny();
        let out = fused_model.execute(
            StepRequest::eval(&shards[0].0, &shards[0].1, BATCH, SEQ)
                .micro_batch(&shards[1].0, &shards[1].1)
                .micro_batch(&shards[2].0, &shards[2].1),
        );
        assert_eq!(out.micro_batches, 3);
        assert_eq!(out.micro_losses.len(), 3);
        for (k, (ids, targets)) in shards.iter().enumerate() {
            let mut solo = tiny();
            let alone = solo.execute(StepRequest::eval(ids, targets, BATCH, SEQ));
            assert_eq!(
                out.micro_losses[k].to_bits(),
                alone.loss.to_bits(),
                "shard {k} fused loss must match its standalone request"
            );
            assert_eq!(alone.micro_losses, vec![alone.loss]);
        }
        assert!(out.loss.is_finite());
    }

    #[test]
    fn fused_score_micro_losses_are_bit_identical_to_separate_requests() {
        let shards: Vec<(Vec<u32>, Vec<i32>)> = (0..2).map(|k| sample(710 + k)).collect();
        let mut fused_model = tiny();
        let out = fused_model.execute(
            StepRequest::score(&shards[0].0, &shards[0].1, BATCH, SEQ)
                .micro_batch(&shards[1].0, &shards[1].1),
        );
        assert_eq!(out.micro_losses.len(), 2);
        let mut sum = 0.0f64;
        for (k, (ids, targets)) in shards.iter().enumerate() {
            let mut solo = tiny();
            let alone = solo.execute(StepRequest::score(ids, targets, BATCH, SEQ));
            assert_eq!(
                out.micro_losses[k].to_bits(),
                alone.loss.to_bits(),
                "shard {k}"
            );
            sum += alone.loss as f64;
        }
        assert_eq!(out.loss.to_bits(), (sum as f32).to_bits());
    }

    #[test]
    fn prepare_hook_runs_once_per_shard_in_request_order() {
        let (ids, targets) = sample(720);
        let seen = std::cell::RefCell::new(Vec::new());
        let mut hook = |_: &mut TransformerModel, i: usize| seen.borrow_mut().push(i);
        let mut m = tiny();
        m.execute(
            StepRequest::eval(&ids, &targets, BATCH, SEQ)
                .micro_batch(&ids, &targets)
                .micro_batch(&ids, &targets)
                .on_micro_batch(&mut hook),
        );
        assert_eq!(*seen.borrow(), vec![0, 1, 2]);
    }
}
