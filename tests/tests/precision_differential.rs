//! Mixed-precision differential tests: the `Precision::F16Frozen` storage
//! plan must (a) actually halve measured backbone storage, (b) leave the
//! sparse execution path numerically identical to an f32 model holding the
//! same (rounded) weights, (c) keep training dynamics within a documented
//! envelope of the f32 run, and (d) compose with the tenant-adapter
//! attach/detach lifecycle.
//!
//! Documented tolerance (also stated in the README): over 24 LoRA training
//! steps on identical data, the per-step loss of the f16-stored run stays
//! within **0.05 absolute** of the f32 run. The backbone rounding perturbs
//! the function once (≈2^-11 relative per weight); it does not compound,
//! because the stored bits never change and all accumulation is f32.

use lx_model::{prompt_aware_targets, Adam, ModelConfig, Precision, StepRequest, TransformerModel};
use lx_peft::{PeftMethod, TenantAdapter};
use lx_sparse::NeuronBlockSet;
use lx_tensor::f16::round_f16;
use lx_tensor::memtrack;
use std::sync::Arc;

fn batch(model: &TransformerModel, n: usize, seq: usize, seed: u64) -> Vec<u32> {
    lx_tensor::rng::uniform_vec(n * seq, 0.0, model.config.vocab_size as f32, seed)
        .into_iter()
        .map(|v| v as u32)
        .collect()
}

#[test]
fn measured_backbone_footprint_is_at_most_055x() {
    let build = |precision: Precision| {
        let before = memtrack::current_bytes();
        let mut model = TransformerModel::new(ModelConfig::opt_sim_small(), 42);
        model.freeze_all();
        model.set_precision(precision);
        (model, memtrack::current_bytes() - before)
    };
    let (_m32, f32_bytes) = build(Precision::F32);
    let (mut m16, f16_bytes) = build(Precision::F16Frozen);
    let ratio = f16_bytes as f64 / f32_bytes as f64;
    assert!(
        ratio <= 0.55,
        "measured f16 backbone must be ≤0.55x of f32: {ratio} ({f16_bytes} vs {f32_bytes})"
    );
    // The dtype-accounted sum agrees with the allocator-tracked delta.
    assert_eq!(m16.param_storage_bytes(), f16_bytes);
}

#[test]
fn f16_storage_loss_curve_tracks_f32_within_documented_tolerance() {
    const TOLERANCE: f32 = 0.05; // documented: max per-step |Δloss|
    const STEPS: usize = 24; // ≥ 20 per the acceptance criterion
    let run = |precision: Precision| -> Vec<f32> {
        let mut model = TransformerModel::new(ModelConfig::test_tiny(), 7);
        model.freeze_all();
        model.set_precision(precision);
        PeftMethod::lora_default().apply(&mut model, 9);
        let mut opt = Adam::new(0.01);
        let mut losses = Vec::with_capacity(STEPS);
        for step in 0..STEPS {
            // Three fixed batches cycled, identical across both runs.
            let ids = batch(&model, 2, 8, 100 + (step % 3) as u64);
            let targets = prompt_aware_targets(&ids, 2, 8, 0);
            losses.push(
                model
                    .execute(StepRequest::train(&ids, &targets, 2, 8, &mut opt))
                    .loss,
            );
        }
        losses
    };
    let f32_curve = run(Precision::F32);
    let f16_curve = run(Precision::F16Frozen);
    let mut max_diff = 0.0f32;
    for (step, (a, b)) in f16_curve.iter().zip(&f32_curve).enumerate() {
        let d = (a - b).abs();
        assert!(
            d <= TOLERANCE,
            "step {step}: f16 loss {a} vs f32 loss {b} (|Δ| = {d} > {TOLERANCE})"
        );
        max_diff = max_diff.max(d);
    }
    // Both runs must actually train.
    assert!(f32_curve.last().unwrap() < f32_curve.first().unwrap());
    assert!(f16_curve.last().unwrap() < f16_curve.first().unwrap());
    println!("max per-step loss divergence over {STEPS} steps: {max_diff}");
}

/// The sparse MLP path under f16 storage decodes only the active slabs; the
/// result must equal an f32 model whose weights were pre-rounded through f16
/// — same function, different storage — on both forward and backward.
#[test]
fn sparse_path_on_f16_storage_matches_rounded_f32_model() {
    let cfg = ModelConfig::test_tiny();
    let mut half = TransformerModel::new(cfg.clone(), 13);
    let mut rounded = TransformerModel::new(cfg, 13); // same seed, same weights
    half.freeze_all();
    rounded.freeze_all();
    // Round every ≥2-D frozen param of `rounded` through f16 in place,
    // mirroring exactly what the storage demotion does to `half`.
    rounded.for_each_param(&mut |p| {
        if !p.trainable && p.shape().len() >= 2 {
            for v in p.value.as_mut_slice() {
                *v = round_f16(*v);
            }
        }
    });
    half.set_precision(Precision::F16Frozen);
    PeftMethod::lora_default().apply(&mut half, 21);
    PeftMethod::lora_default().apply(&mut rounded, 21);

    // A partial neuron-block plan on every layer forces the slab-decode
    // path (block 4 over d_ff = 32 → keep half the blocks).
    let mut plan = lx_model::SparsePlan::dense(half.config.n_layers);
    for layer in plan.layers.iter_mut() {
        layer.mlp = Some(Arc::new(NeuronBlockSet::from_indices(
            vec![0, 2, 5, 7],
            8,
            4,
        )));
    }
    let ids = batch(&half, 2, 8, 31);
    // Grad mode runs forward + cross-entropy backward in one request, so
    // both the decoded-slab forward and the §II-D sparse backward (which
    // reads the same decoded slabs) are compared.
    let targets = prompt_aware_targets(&ids, 2, 8, 0);
    let out_a = half.execute(
        StepRequest::grad(&ids, &targets, 2, 8)
            .plan(&plan)
            .keep_logits(),
    );
    let out_b = rounded.execute(
        StepRequest::grad(&ids, &targets, 2, 8)
            .plan(&plan)
            .keep_logits(),
    );
    let (ya, yb) = (out_a.logits.unwrap(), out_b.logits.unwrap());
    for (a, b) in ya.as_slice().iter().zip(yb.as_slice()) {
        assert!(
            (a - b).abs() <= 1e-4 * (1.0 + b.abs()),
            "sparse forward diverged: {a} vs {b}"
        );
    }
    let mut grads_a = Vec::new();
    half.for_each_param(&mut |p| {
        if let Some(g) = &p.grad {
            grads_a.push((p.name.clone(), g.as_slice().to_vec()));
        }
    });
    let mut checked = 0;
    rounded.for_each_param(&mut |p| {
        if let Some(g) = &p.grad {
            let (name, ga) = grads_a
                .iter()
                .find(|(n, _)| n == &p.name)
                .expect("grad present in both");
            for (x, y) in ga.iter().zip(g.as_slice()) {
                assert!(
                    (x - y).abs() <= 1e-3 * (1.0 + y.abs()),
                    "{name}: grad diverged: {x} vs {y}"
                );
            }
            checked += 1;
        }
    });
    assert!(checked > 0, "no gradients compared");
}

#[test]
fn tenant_adapter_lifecycle_works_on_f16_backbone() {
    let mut m = TransformerModel::new(ModelConfig::test_tiny(), 17);
    m.freeze_all();
    m.set_precision(Precision::F16Frozen);
    let adapter = TenantAdapter::initialise(&mut m, PeftMethod::lora_default(), 3);
    assert_eq!(m.num_trainable(), 0);
    assert_eq!(
        m.precision(),
        Precision::F16Frozen,
        "detach keeps precision"
    );
    adapter.attach_to(&mut m);
    let ids = batch(&m, 1, 8, 41);
    let before = m.execute(StepRequest::infer(&ids, 1, 8)).logits.unwrap();
    let extracted = TenantAdapter::extract_from(&mut m, PeftMethod::lora_default(), 3);
    lx_peft::detach(&mut m);
    extracted.attach_to(&mut m);
    let after = m.execute(StepRequest::infer(&ids, 1, 8)).logits.unwrap();
    assert_eq!(
        before.as_slice(),
        after.as_slice(),
        "attach/extract on a half backbone must restore the exact function"
    );
}
