//! The load-bearing correctness property of the whole system: with a
//! *complete* sparse plan (full causal attention layout, all neuron blocks
//! active), the sparse execution path must reproduce the dense path exactly
//! (up to f32 accumulation order) — forward logits, loss, input gradients,
//! and trainable-parameter gradients, across PEFT methods.

use lx_integration::{batch_ids, tiny_model};
use lx_model::plan::{LayerPlan, SparsePlan};
use lx_model::{prompt_aware_targets, StepRequest};
use lx_peft::PeftMethod;
use lx_sparse::{BlockCsr, MultiHeadLayout, NeuronBlockSet, PatternSpec};
use std::sync::Arc;

const BLOCK: usize = 4;
const SEQ: usize = 16;
const BATCH: usize = 2;

fn full_plan(n_layers: usize, n_heads: usize, d_ff: usize) -> SparsePlan {
    let csr = Arc::new(BlockCsr::from_mask(
        &PatternSpec::Causal.mask(SEQ / BLOCK),
        BLOCK,
    ));
    let mut plan = SparsePlan::default();
    for _ in 0..n_layers {
        plan.layers.push(LayerPlan {
            attn: Some(Arc::new(MultiHeadLayout::combine(vec![
                csr.clone();
                n_heads
            ]))),
            mlp: Some(Arc::new(NeuronBlockSet::all(d_ff / BLOCK, BLOCK))),
        });
    }
    plan
}

fn assert_close(a: &[f32], b: &[f32], tol: f32, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            (x - y).abs() <= tol * (1.0 + y.abs()),
            "{what}[{i}]: {x} vs {y}"
        );
    }
}

fn check_method(method: PeftMethod) {
    let mut dense = tiny_model(7);
    let mut sparse = tiny_model(7);
    method.apply(&mut dense, 9);
    method.apply(&mut sparse, 9);
    let cfg = dense.config.clone();
    let ids = batch_ids(BATCH, SEQ, cfg.vocab_size, 11);
    let plan = full_plan(cfg.n_layers, cfg.n_heads, cfg.d_ff);
    let prompt = dense.embedding.prompt_len();
    // Prompt tuning changes the effective sequence; skip the sparse plan in
    // that case unless it stays block-aligned.
    if !(SEQ + prompt).is_multiple_of(BLOCK) {
        return;
    }
    let targets = prompt_aware_targets(&ids, BATCH, SEQ, prompt);

    // Grad mode: forward + loss + backward, gradients left in the params.
    let out_d = dense.execute(StepRequest::grad(&ids, &targets, BATCH, SEQ).keep_logits());
    let out_s = sparse.execute(
        StepRequest::grad(&ids, &targets, BATCH, SEQ)
            .plan(&plan)
            .keep_logits(),
    );
    let logits_d = out_d.logits.expect("dense logits");
    let logits_s = out_s.logits.expect("sparse logits");
    assert_close(logits_d.as_slice(), logits_s.as_slice(), 2e-3, "logits");

    let (loss_d, loss_s) = (out_d.loss, out_s.loss);
    assert!((loss_d - loss_s).abs() < 1e-3, "loss {loss_d} vs {loss_s}");

    // Compare every trainable gradient.
    let mut grads_d: Vec<(String, Vec<f32>)> = Vec::new();
    dense.for_each_param(&mut |p| {
        if p.trainable {
            grads_d.push((
                p.name.clone(),
                p.grad
                    .as_ref()
                    .map(|g| g.as_slice().to_vec())
                    .unwrap_or_default(),
            ));
        }
    });
    let mut i = 0usize;
    sparse.for_each_param(&mut |p| {
        if p.trainable {
            let (name, gd) = &grads_d[i];
            assert_eq!(&p.name, name, "param order");
            let gs = p
                .grad
                .as_ref()
                .map(|g| g.as_slice().to_vec())
                .unwrap_or_default();
            assert_close(&gs, gd, 5e-2, name);
            i += 1;
        }
    });
    assert_eq!(i, grads_d.len());
}

#[test]
fn full_plan_matches_dense_lora() {
    check_method(PeftMethod::lora_default());
}

#[test]
fn full_plan_matches_dense_lora_all_targets() {
    check_method(PeftMethod::Lora {
        rank: 2,
        alpha: 4.0,
        targets: lx_peft::LoraTargets::all(),
    });
}

#[test]
fn full_plan_matches_dense_adapter() {
    check_method(PeftMethod::Adapter { bottleneck: 4 });
}

#[test]
fn full_plan_matches_dense_bitfit() {
    check_method(PeftMethod::BitFit);
}

#[test]
fn full_plan_matches_dense_full_ft() {
    check_method(PeftMethod::Full);
}

#[test]
fn partial_attention_pattern_changes_output() {
    // Sanity check that the plan actually flows: a narrow window must give
    // different logits from dense.
    let mut dense = tiny_model(13);
    let mut sparse = tiny_model(13);
    let cfg = dense.config.clone();
    let ids = batch_ids(BATCH, SEQ, cfg.vocab_size, 14);
    let csr = Arc::new(BlockCsr::from_mask(
        &PatternSpec::LocalWindow { w: 1 }.mask(SEQ / BLOCK),
        BLOCK,
    ));
    let mut plan = SparsePlan::default();
    for _ in 0..cfg.n_layers {
        plan.layers.push(LayerPlan {
            attn: Some(Arc::new(MultiHeadLayout::combine(vec![
                csr.clone();
                cfg.n_heads
            ]))),
            mlp: None,
        });
    }
    let a = dense
        .execute(StepRequest::infer(&ids, BATCH, SEQ))
        .logits
        .unwrap();
    let b = sparse
        .execute(StepRequest::infer(&ids, BATCH, SEQ).plan(&plan))
        .logits
        .unwrap();
    let diff: f32 = a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| (x - y).abs())
        .sum();
    assert!(diff > 1e-3, "narrow window should alter outputs");
}
