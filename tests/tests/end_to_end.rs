//! End-to-end pipeline tests: calibration → sparse fine-tuning →
//! convergence and downstream evaluation, across PEFT methods.

use long_exposure::engine::{EngineConfig, FinetuneEngine, StepMode};
use lx_data::instruct::InstructGenerator;
use lx_data::tasks::{evaluate_accuracy, Task, TaskKind};
use lx_data::{Batcher, SyntheticWorld};
use lx_integration::{batch_ids, tiny_model};
use lx_model::{prompt_aware_targets, score_continuation, Sgd};
use lx_peft::PeftMethod;

const BLOCK: usize = 4;
const SEQ: usize = 16;
const BATCH: usize = 2;

fn engine_for(method: PeftMethod, seed: u64) -> FinetuneEngine {
    let mut model = tiny_model(seed);
    method.apply(&mut model, seed + 1);
    let mut engine = FinetuneEngine::new(
        model,
        EngineConfig {
            block_size: BLOCK,
            predictor_rank: 4,
            calib_epochs: 40,
            attn_prob_threshold: 8.0 / SEQ as f32,
            ..EngineConfig::default()
        },
    );
    let vocab = engine.model.config.vocab_size;
    let calib: Vec<(Vec<u32>, usize, usize)> = (0..2)
        .map(|i| (batch_ids(BATCH, SEQ, vocab, seed + 10 + i), BATCH, SEQ))
        .collect();
    engine.calibrate(&calib);
    engine
}

#[test]
fn sparse_training_converges_for_every_peft_method() {
    for method in [
        PeftMethod::lora_default(),
        PeftMethod::Adapter { bottleneck: 4 },
        PeftMethod::BitFit,
        PeftMethod::Full,
    ] {
        let mut engine = engine_for(method, 21);
        let vocab = engine.model.config.vocab_size;
        let ids = batch_ids(BATCH, SEQ, vocab, 33);
        let targets = prompt_aware_targets(&ids, BATCH, SEQ, 0);
        let mut opt = Sgd::new(0.05);
        let first = engine.train_step(&ids, &targets, BATCH, SEQ, &mut opt).loss;
        let mut last = first;
        for _ in 0..12 {
            last = engine.train_step(&ids, &targets, BATCH, SEQ, &mut opt).loss;
        }
        assert!(
            last < first,
            "{}: sparse loss must drop ({first} -> {last})",
            method.name()
        );
    }
}

#[test]
fn sparse_and_dense_reach_similar_loss() {
    // Fig. 11a's claim in miniature: predicted sparsity tracks dense
    // convergence while random patterns lag.
    let run = |mode: StepMode| {
        let mut engine = engine_for(PeftMethod::lora_default(), 5);
        engine.model.embedding.tokens.trainable = true;
        let vocab = engine.model.config.vocab_size;
        let ids = batch_ids(BATCH, SEQ, vocab, 6);
        let targets = prompt_aware_targets(&ids, BATCH, SEQ, 0);
        let mut opt = Sgd::new(0.05);
        let mut last = 0.0;
        for _ in 0..20 {
            last = engine
                .train_step_mode(&ids, &targets, BATCH, SEQ, &mut opt, mode)
                .loss;
        }
        last
    };
    let dense = run(StepMode::Dense);
    let sparse = run(StepMode::Sparse);
    assert!(
        sparse < dense * 1.3 + 0.2,
        "sparse final loss {sparse} should track dense {dense}"
    );
}

#[test]
fn densities_are_reported_and_meaningful() {
    let mut engine = engine_for(PeftMethod::lora_default(), 8);
    let vocab = engine.model.config.vocab_size;
    let ids = batch_ids(BATCH, SEQ, vocab, 9);
    let targets = prompt_aware_targets(&ids, BATCH, SEQ, 0);
    let mut opt = Sgd::new(0.01);
    let stats = engine.train_step(&ids, &targets, BATCH, SEQ, &mut opt);
    let attn = stats.attn_density.expect("attention density");
    let mlp = stats.mlp_density.expect("MLP density");
    assert!(attn > 0.0 && attn <= 1.0);
    assert!(mlp > 0.0 && mlp <= 1.0);
    // The causal triangle occupies ~(n+1)/2n of the grid; the chosen
    // patterns can never exceed it.
    let n = (SEQ / BLOCK) as f32;
    assert!(attn <= (n + 1.0) / (2.0 * n) + 1e-4);
}

#[test]
fn downstream_eval_pipeline_runs() {
    // A miniature Table IV pipeline: instruction-tune then score tasks.
    let mut engine = engine_for(PeftMethod::lora_default(), 40);
    engine.model.embedding.tokens.trainable = true;
    let vocab = engine.model.config.vocab_size as u32;
    let world = SyntheticWorld::new(vocab, 5);
    let mut batcher = Batcher::new(InstructGenerator::new(world.clone()).stream(20_000, 1));
    let mut opt = Sgd::new(0.05);
    for _ in 0..10 {
        let ids = batcher.next_batch(BATCH, SEQ);
        let targets = prompt_aware_targets(&ids, BATCH, SEQ, 0);
        engine.train_step(&ids, &targets, BATCH, SEQ, &mut opt);
    }
    let task = Task::new(TaskKind::Piqa, world);
    let examples = task.examples(10);
    let acc = evaluate_accuracy(&examples, |p, c| {
        score_continuation(&mut engine.model, p, c)
    });
    assert!((0.0..=1.0).contains(&acc));
}

#[test]
fn memory_tracker_sees_smaller_sparse_footprint() {
    // The O(s²) vs O(s) attention-buffer gap needs a sequence long enough
    // that score buffers dominate the fixed bookkeeping (paper Fig. 8 uses
    // 512–4096; the tiny model's max is 64).
    let seq = 64;
    let mut model = tiny_model(50);
    PeftMethod::lora_default().apply(&mut model, 51);
    let mut engine = FinetuneEngine::new(
        model,
        EngineConfig {
            block_size: BLOCK,
            predictor_rank: 4,
            calib_epochs: 30,
            attn_prob_threshold: 8.0 / seq as f32,
            ..EngineConfig::default()
        },
    );
    let vocab = engine.model.config.vocab_size;
    engine.calibrate(&[(batch_ids(BATCH, seq, vocab, 52), BATCH, seq)]);
    let ids = batch_ids(BATCH, seq, vocab, 53);
    let targets = prompt_aware_targets(&ids, BATCH, seq, 0);
    let mut opt = Sgd::new(0.01);
    let ((), dense_peak) = lx_tensor::memtrack::measure_peak(|| {
        engine.train_step_dense(&ids, &targets, BATCH, seq, &mut opt);
    });
    let ((), sparse_peak) = lx_tensor::memtrack::measure_peak(|| {
        engine.train_step(&ids, &targets, BATCH, seq, &mut opt);
    });
    assert!(
        sparse_peak <= dense_peak,
        "sparse step peak {sparse_peak} must not exceed dense {dense_peak}"
    );
}
