//! Size-aware backend dispatch and the tile/threshold policy.
//!
//! ## Dispatch policy
//!
//! The packed backend pays for its speed up front: packing traffic of
//! `O(m·k + k·n)` writes per k-block plus the beta pass over C. For the
//! Fig. 12 operator shapes (hundreds × hundreds and up) that cost is noise;
//! for the many small per-block GEMMs the sparse operators issue (e.g.
//! `32×64×32` score blocks) it is not. The [`Auto`] dispatcher therefore
//! routes a call to [`Packed`] only when its FLOP count clears
//! [`KernelPolicy::min_flops_packed`] *and* the inner/output dimensions are
//! wide enough (`k ≥ 8`, `n ≥ NR/2`) for panels to amortise; everything else
//! takes the [`Reference`] loops, which have zero setup cost.
//!
//! The policy lives in process-wide atomics so `lx-runtime` can install a
//! cache-model-derived [`TileConfig`] (see `lx_runtime::kernel_policy`) and
//! [`autotune`] can refine the crossover threshold from a one-time measured
//! probe — both without synchronisation on the hot path.

use crate::backend::{KernelBackend, Reference};
use crate::epilogue::Epilogue;
use crate::isa::Isa;
use crate::observe::Observed;
use crate::packed::{Packed, NR};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Cache-blocking tile shape for the packed backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileConfig {
    /// Rows of A packed per block (Ã sized `mc × kc`, targeting L2).
    pub mc: usize,
    /// K-depth per block (B̃ panel of `kc × NR` targeting L1).
    pub kc: usize,
    /// Columns of B packed per block (B̃ sized `kc × nc`).
    pub nc: usize,
}

impl Default for TileConfig {
    /// Conservative defaults for a ~32 KiB L1d / ≥256 KiB L2 core:
    /// `kc·NR·4B = 16 KiB` (half of L1d for B̃), `mc·kc·4B = 96 KiB` of Ã.
    fn default() -> Self {
        TileConfig {
            mc: 96,
            kc: 256,
            nc: 2048,
        }
    }
}

/// Dispatch policy: tile shape plus the packed-vs-reference crossover, plus
/// an optional microkernel ISA pin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelPolicy {
    pub tiles: TileConfig,
    /// Minimum `2·m·k·n` FLOPs for a call to take the packed path.
    pub min_flops_packed: u64,
    /// Pin the microkernel to a specific [`Isa`] arm (`None` = widest
    /// detected). `LX_KERNEL_FORCE_SCALAR` and `LX_KERNEL_ISA` still take
    /// precedence over the pin — see [`crate::active_isa`].
    pub isa: Option<Isa>,
}

impl Default for KernelPolicy {
    fn default() -> Self {
        KernelPolicy {
            tiles: TileConfig::default(),
            // ~2·64³: below this the packing passes rival the math itself.
            min_flops_packed: 1 << 19,
            isa: None,
        }
    }
}

static MC: AtomicUsize = AtomicUsize::new(96);
static KC: AtomicUsize = AtomicUsize::new(256);
static NC: AtomicUsize = AtomicUsize::new(2048);
static MIN_FLOPS: AtomicU64 = AtomicU64::new(1 << 19);
static ISA_PIN: AtomicUsize = AtomicUsize::new(0); // Isa wire code; 0 = none

/// Install a dispatch policy process-wide. Takes effect on the next kernel
/// call; safe to call at any time (benches install a tuned policy up front,
/// tests leave the defaults).
pub fn install_policy(p: KernelPolicy) {
    MC.store(p.tiles.mc.max(1), Ordering::Relaxed);
    KC.store(p.tiles.kc.max(1), Ordering::Relaxed);
    NC.store(p.tiles.nc.max(NR), Ordering::Relaxed);
    MIN_FLOPS.store(p.min_flops_packed, Ordering::Relaxed);
    ISA_PIN.store(p.isa.map_or(0, |i| i.code()), Ordering::Relaxed);
}

/// The currently installed policy.
pub fn current_policy() -> KernelPolicy {
    KernelPolicy {
        tiles: tiles(),
        min_flops_packed: MIN_FLOPS.load(Ordering::Relaxed),
        isa: policy_isa(),
    }
}

/// The ISA pin of the installed policy, if any.
pub(crate) fn policy_isa() -> Option<Isa> {
    Isa::from_code(ISA_PIN.load(Ordering::Relaxed))
}

pub(crate) fn tiles() -> TileConfig {
    TileConfig {
        mc: MC.load(Ordering::Relaxed),
        kc: KC.load(Ordering::Relaxed),
        nc: NC.load(Ordering::Relaxed),
    }
}

/// Whether `LX_KERNEL_FORCE_SCALAR=1` is set: the packed backend then skips
/// its SIMD microkernel and uses the fixed-shape scalar kernel everywhere.
/// Read once — the CI fallback job sets it before the process starts.
pub fn force_scalar() -> bool {
    static FORCE: OnceLock<bool> = OnceLock::new();
    *FORCE.get_or_init(|| std::env::var("LX_KERNEL_FORCE_SCALAR").as_deref() == Ok("1"))
}

/// The three backend singletons.
pub static REFERENCE: Reference = Reference;
pub static PACKED: Packed = Packed;
pub static AUTO: Auto = Auto;

// Instrumented wrappers around the singletons: [`backend`] hands these out so
// every dispatched GEMM lands in the `kernel.gemm.*` metrics. Raw singletons
// stay available for differential tests and benches that want zero overhead.
static OBS_REFERENCE: Observed = Observed::new(&REFERENCE);
static OBS_PACKED: Observed = Observed::new(&PACKED);
static OBS_AUTO: Observed = Observed::new(&AUTO);

/// Size-aware dispatcher: picks [`Packed`] or [`Reference`] per call.
pub struct Auto;

#[inline]
fn pick(m: usize, k: usize, n: usize) -> &'static dyn KernelBackend {
    let flops = 2 * (m as u64) * (k as u64) * (n as u64);
    if flops >= MIN_FLOPS.load(Ordering::Relaxed) && k >= 8 && n >= NR / 2 {
        &PACKED
    } else {
        &REFERENCE
    }
}

impl KernelBackend for Auto {
    fn name(&self) -> &'static str {
        "auto"
    }

    fn gemm(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: &[f32],
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        pick(m, k, n).gemm(m, k, n, a, lda, b, ldb, c, ldc, beta)
    }

    fn gemm_nt(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: &[f32],
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        pick(m, k, n).gemm_nt(m, k, n, a, lda, b, ldb, c, ldc, beta)
    }

    fn gemm_tn(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: &[f32],
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        pick(m, k, n).gemm_tn(m, k, n, a, lda, b, ldb, c, ldc, beta)
    }

    fn gemm_f16(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: &[u16],
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        pick(m, k, n).gemm_f16(m, k, n, a, lda, b, ldb, c, ldc, beta)
    }

    fn gemm_nt_f16(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: &[u16],
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        pick(m, k, n).gemm_nt_f16(m, k, n, a, lda, b, ldb, c, ldc, beta)
    }

    fn gemm_q8(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: lx_quant::Q8View<'_>,
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        pick(m, k, n).gemm_q8(m, k, n, a, lda, b, ldb, c, ldc, beta)
    }

    fn gemm_nt_q8(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: lx_quant::Q8View<'_>,
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        pick(m, k, n).gemm_nt_q8(m, k, n, a, lda, b, ldb, c, ldc, beta)
    }

    fn gemm_q4(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: lx_quant::Q4View<'_>,
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        pick(m, k, n).gemm_q4(m, k, n, a, lda, b, ldb, c, ldc, beta)
    }

    fn gemm_nt_q4(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: lx_quant::Q4View<'_>,
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        pick(m, k, n).gemm_nt_q4(m, k, n, a, lda, b, ldb, c, ldc, beta)
    }

    fn gemm_ep(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: &[f32],
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
        ep: Epilogue<'_>,
    ) {
        pick(m, k, n).gemm_ep(m, k, n, a, lda, b, ldb, c, ldc, beta, ep)
    }

    fn gemm_nt_ep(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: &[f32],
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
        ep: Epilogue<'_>,
    ) {
        pick(m, k, n).gemm_nt_ep(m, k, n, a, lda, b, ldb, c, ldc, beta, ep)
    }

    fn gemm_f16_ep(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: &[u16],
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
        ep: Epilogue<'_>,
    ) {
        pick(m, k, n).gemm_f16_ep(m, k, n, a, lda, b, ldb, c, ldc, beta, ep)
    }

    fn gemm_nt_f16_ep(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: &[u16],
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
        ep: Epilogue<'_>,
    ) {
        pick(m, k, n).gemm_nt_f16_ep(m, k, n, a, lda, b, ldb, c, ldc, beta, ep)
    }

    fn gemm_q8_ep(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: lx_quant::Q8View<'_>,
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
        ep: Epilogue<'_>,
    ) {
        pick(m, k, n).gemm_q8_ep(m, k, n, a, lda, b, ldb, c, ldc, beta, ep)
    }

    fn gemm_nt_q8_ep(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: lx_quant::Q8View<'_>,
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
        ep: Epilogue<'_>,
    ) {
        pick(m, k, n).gemm_nt_q8_ep(m, k, n, a, lda, b, ldb, c, ldc, beta, ep)
    }

    fn gemm_q4_ep(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: lx_quant::Q4View<'_>,
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
        ep: Epilogue<'_>,
    ) {
        pick(m, k, n).gemm_q4_ep(m, k, n, a, lda, b, ldb, c, ldc, beta, ep)
    }

    fn gemm_nt_q4_ep(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: lx_quant::Q4View<'_>,
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
        ep: Epilogue<'_>,
    ) {
        pick(m, k, n).gemm_nt_q4_ep(m, k, n, a, lda, b, ldb, c, ldc, beta, ep)
    }
}

/// Resolve the process-wide backend once: `LX_KERNEL_BACKEND` ∈
/// `reference | packed | auto` (default `auto`; anything else warns loudly
/// and falls back to `auto` so a typo can't silently un-pin a benchmark).
/// `LX_KERNEL_AUTOTUNE=1` additionally runs the one-time [`autotune`] probe
/// before the first dispatch.
pub fn backend() -> &'static dyn KernelBackend {
    static CHOICE: OnceLock<&'static dyn KernelBackend> = OnceLock::new();
    *CHOICE.get_or_init(|| {
        if std::env::var("LX_KERNEL_AUTOTUNE").as_deref() == Ok("1") {
            autotune();
        }
        let name = std::env::var("LX_KERNEL_BACKEND").unwrap_or_else(|_| "auto".into());
        match name.as_str() {
            "reference" => &OBS_REFERENCE,
            "packed" => &OBS_PACKED,
            "auto" => &OBS_AUTO,
            other => {
                eprintln!(
                    "lx-kernels: unknown LX_KERNEL_BACKEND '{other}' \
                     (expected reference|packed|auto); using auto"
                );
                &OBS_AUTO
            }
        }
    })
}

/// Name of the backend [`Auto`] would route an `m×k×n` call to right now
/// (benches report this next to their measurements).
pub fn auto_choice(m: usize, k: usize, n: usize) -> &'static str {
    pick(m, k, n).name()
}

/// Look a backend up by name (benches and differential tests).
pub fn backend_by_name(name: &str) -> Option<&'static dyn KernelBackend> {
    match name {
        "reference" => Some(&REFERENCE),
        "packed" => Some(&PACKED),
        "auto" => Some(&AUTO),
        _ => None,
    }
}

/// One-time measured probe: find the GEMM size where the packed backend
/// overtakes the reference loops and install that crossover as
/// [`KernelPolicy::min_flops_packed`].
///
/// The probe walks a size ladder spanning the tiny→medium shape classes and
/// measures **both** forward variants (`nn` and `nt`), taking the more
/// conservative of the two crossovers. It runs under the live configuration —
/// the [`active_isa`](crate::active_isa) microkernel arm and the current
/// `LX_THREADS` pool width — which is exactly why the persisted policy
/// (below) is keyed by `(isa, threads)`.
///
/// Persistence: when `LX_KERNEL_POLICY=<path>` is set, a policy previously
/// saved there is loaded instead of re-probing **iff** its `(isa, threads)`
/// key matches the running process (serve restarts skip the probe); after a
/// fresh probe the result is written back to that path. Costs a few
/// milliseconds when it does probe; benches call it explicitly, library
/// users opt in via `LX_KERNEL_AUTOTUNE=1` (checked in [`backend`]).
/// Returns the installed policy.
pub fn autotune() -> KernelPolicy {
    static RESULT: OnceLock<KernelPolicy> = OnceLock::new();
    *RESULT.get_or_init(|| {
        let isa = crate::isa::active_isa();
        let threads = lx_parallel::pool().threads();
        let persist = std::env::var("LX_KERNEL_POLICY")
            .ok()
            .map(std::path::PathBuf::from);
        if let Some(path) = &persist {
            match load_policy_json(path) {
                Some(p) if p.isa == isa && p.threads == threads => {
                    install_policy(p.policy);
                    eprintln!(
                        "lx-kernels: loaded kernel policy from {} (tuned for {}, {} threads); \
                         skipping the autotune probe",
                        path.display(),
                        isa.name(),
                        threads
                    );
                    return p.policy;
                }
                Some(p) => {
                    eprintln!(
                        "lx-kernels: persisted policy {} was tuned for ({}, {} threads) but \
                         this process runs ({}, {} threads); re-probing",
                        path.display(),
                        p.isa.name(),
                        p.threads,
                        isa.name(),
                        threads
                    );
                }
                None => {}
            }
        }
        let mut policy = current_policy();
        let mut crossover: Option<usize> = None;
        for s in [32usize, 48, 64, 96, 128, 192] {
            // No exact zeros: Reference skips `av == 0.0` in its inner loop,
            // which would bias the measured crossover against Packed.
            let a: Vec<f32> = (0..s * s).map(|i| (i % 7) as f32 * 0.25 - 0.875).collect();
            let b = a.clone();
            let mut c = vec![0.0f32; s * s];
            let time = |backend: &dyn KernelBackend, c: &mut [f32], nt: bool| {
                let run = |c: &mut [f32]| {
                    if nt {
                        backend.gemm_nt(s, s, s, &a, s, &b, s, c, s, 0.0);
                    } else {
                        backend.gemm(s, s, s, &a, s, &b, s, c, s, 0.0);
                    }
                };
                run(c); // warm
                let t0 = std::time::Instant::now();
                for _ in 0..3 {
                    run(c);
                }
                t0.elapsed()
            };
            // Packed must win both forward shapes at this size: the nn and
            // nt crossovers differ (the nt reference is a dot-product loop
            // with no packing to amortise), and dispatch has one threshold.
            let wins_nn = time(&PACKED, &mut c, false) <= time(&REFERENCE, &mut c, false);
            let wins_nt = time(&PACKED, &mut c, true) <= time(&REFERENCE, &mut c, true);
            if wins_nn && wins_nt {
                crossover = Some(s);
                break;
            }
        }
        if let Some(s) = crossover {
            policy.min_flops_packed = 2 * (s as u64).pow(3);
        }
        install_policy(policy);
        if let Some(path) = &persist {
            match save_policy_json(path, policy, isa, threads) {
                Ok(()) => eprintln!(
                    "lx-kernels: saved autotuned kernel policy to {} ({}, {} threads)",
                    path.display(),
                    isa.name(),
                    threads
                ),
                Err(e) => eprintln!(
                    "lx-kernels: could not save kernel policy to {}: {e}",
                    path.display()
                ),
            }
        }
        policy
    })
}

/// A policy loaded from disk, together with the `(isa, threads)` key it was
/// tuned under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PersistedPolicy {
    pub policy: KernelPolicy,
    pub isa: Isa,
    pub threads: usize,
}

/// Write `policy` (plus its tuning key) to `path` as a small JSON document.
/// Hand-rolled writer — the workspace deliberately has no serde dependency.
pub fn save_policy_json(
    path: &std::path::Path,
    policy: KernelPolicy,
    isa: Isa,
    threads: usize,
) -> std::io::Result<()> {
    let json = format!(
        "{{\n  \"version\": 1,\n  \"isa\": \"{}\",\n  \"threads\": {},\n  \"mc\": {},\n  \
         \"kc\": {},\n  \"nc\": {},\n  \"min_flops_packed\": {}\n}}\n",
        isa.name(),
        threads,
        policy.tiles.mc,
        policy.tiles.kc,
        policy.tiles.nc,
        policy.min_flops_packed
    );
    std::fs::write(path, json)
}

/// Read a policy previously written by [`save_policy_json`]. Returns `None`
/// (never errors) on a missing file, malformed JSON, or an unknown version,
/// so a stale or corrupt file degrades to a re-probe.
pub fn load_policy_json(path: &std::path::Path) -> Option<PersistedPolicy> {
    let text = std::fs::read_to_string(path).ok()?;
    if json_u64(&text, "version")? != 1 {
        return None;
    }
    let isa = Isa::parse(&json_str(&text, "isa")?)?;
    let threads = json_u64(&text, "threads")? as usize;
    let policy = KernelPolicy {
        tiles: TileConfig {
            mc: json_u64(&text, "mc")? as usize,
            kc: json_u64(&text, "kc")? as usize,
            nc: json_u64(&text, "nc")? as usize,
        },
        min_flops_packed: json_u64(&text, "min_flops_packed")?,
        isa: None,
    };
    if policy.tiles.mc == 0 || policy.tiles.kc == 0 || policy.tiles.nc == 0 || threads == 0 {
        return None;
    }
    Some(PersistedPolicy {
        policy,
        isa,
        threads,
    })
}

/// Raw value token following `"key":` in a flat JSON object.
fn json_raw<'a>(text: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\"");
    let after = &text[text.find(&needle)? + needle.len()..];
    let after = after.trim_start();
    let after = after.strip_prefix(':')?.trim_start();
    let end = after.find([',', '}', '\n']).unwrap_or(after.len());
    Some(after[..end].trim())
}

fn json_u64(text: &str, key: &str) -> Option<u64> {
    json_raw(text, key)?.parse().ok()
}

fn json_str(text: &str, key: &str) -> Option<String> {
    let raw = json_raw(text, key)?;
    let inner = raw.strip_prefix('"')?.strip_suffix('"')?;
    Some(inner.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_routes_small_to_reference() {
        assert_eq!(pick(4, 4, 4).name(), "reference");
        assert_eq!(pick(512, 512, 512).name(), "packed");
        // Narrow K or N never packs, whatever the FLOP count.
        assert_eq!(pick(100_000, 4, 100).name(), "reference");
        assert_eq!(pick(100_000, 100, 4).name(), "reference");
    }

    #[test]
    fn policy_roundtrip() {
        // Run the (memoized) autotune first so no other mutator can race the
        // install/read pair below.
        let _ = autotune();
        let before = current_policy();
        let p = KernelPolicy {
            tiles: TileConfig {
                mc: 48,
                kc: 128,
                nc: 512,
            },
            min_flops_packed: 1234,
            isa: Some(Isa::Scalar),
        };
        install_policy(p);
        assert_eq!(current_policy(), p);
        install_policy(before);
    }

    #[test]
    fn policy_json_roundtrip() {
        let path = std::env::temp_dir().join(format!("lx_policy_test_{}.json", std::process::id()));
        let p = KernelPolicy {
            tiles: TileConfig {
                mc: 72,
                kc: 192,
                nc: 1024,
            },
            min_flops_packed: 2 * 96u64.pow(3),
            isa: None,
        };
        save_policy_json(&path, p, Isa::Avx2, 4).unwrap();
        let loaded = load_policy_json(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.policy, p);
        assert_eq!(loaded.isa, Isa::Avx2);
        assert_eq!(loaded.threads, 4);
        // Corrupt / missing files degrade to None, never panic.
        assert!(load_policy_json(std::path::Path::new("/nonexistent/p.json")).is_none());
    }

    #[test]
    fn backend_lookup() {
        assert_eq!(backend_by_name("packed").unwrap().name(), "packed");
        assert!(backend_by_name("tpu").is_none());
    }
}
