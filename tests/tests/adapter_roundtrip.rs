//! Tenant-adapter round trip: extract → serialize → registry persist →
//! restore on a fresh identical backbone → **bit-identical** forward pass.

use lx_integration::{batch_ids, tiny_cfg, tiny_model};
use lx_model::{prompt_aware_targets, Sgd, StepRequest, TransformerModel};
use lx_peft::{detach, PeftMethod, TenantAdapter};
use lx_serve::AdapterRegistry;
use std::path::PathBuf;

fn train(model: &mut TransformerModel, steps: usize, seed: u64) {
    let (batch, seq) = (2, 8);
    let ids = batch_ids(batch, seq, tiny_cfg().vocab_size, seed);
    let prompt = model.embedding.prompt_len();
    let targets = prompt_aware_targets(&ids, batch, seq, prompt);
    let mut opt = Sgd::new(0.05);
    for _ in 0..steps {
        model.execute(StepRequest::train(&ids, &targets, batch, seq, &mut opt));
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "lx-it-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn adapter_roundtrip_through_registry_is_bit_identical() {
    for method in [
        PeftMethod::lora_default(),
        PeftMethod::adapter_default(),
        PeftMethod::PromptTuning { prompt_len: 4 },
    ] {
        // Train a tenant on backbone A.
        let mut donor = tiny_model(5);
        donor.freeze_all();
        method.apply(&mut donor, 17);
        train(&mut donor, 6, 23);
        let ids = batch_ids(1, 8, tiny_cfg().vocab_size, 31);
        let reference = donor
            .execute(StepRequest::infer(&ids, 1, 8))
            .logits
            .unwrap();
        let adapter = TenantAdapter::extract_from(&mut donor, method, 17);

        // Persist through a durable registry, then reload from disk.
        let dir = temp_dir(method.name());
        {
            let registry = AdapterRegistry::open(&dir).expect("open registry");
            registry.put("tenant", &adapter).expect("persist adapter");
        }
        let registry = AdapterRegistry::open(&dir).expect("reopen registry");
        let restored = registry
            .get("tenant")
            .expect("decode adapter")
            .expect("adapter present");
        assert_eq!(adapter, restored, "{}: blob round trip", method.name());

        // Attach onto a *fresh* identical backbone: same constructor seeds
        // rebuild the same frozen weights, so the restored tenant's function
        // must match the donor's bit for bit.
        let mut fresh = tiny_model(5);
        fresh.freeze_all();
        restored.attach_to(&mut fresh);
        let replayed = fresh
            .execute(StepRequest::infer(&ids, 1, 8))
            .logits
            .unwrap();
        assert_eq!(
            reference.as_slice(),
            replayed.as_slice(),
            "{}: restored forward pass must be bit-identical",
            method.name()
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn detach_restores_the_pristine_backbone_function() {
    let mut model = tiny_model(8);
    model.freeze_all();
    let ids = batch_ids(1, 8, tiny_cfg().vocab_size, 3);
    let pristine = model
        .execute(StepRequest::infer(&ids, 1, 8))
        .logits
        .unwrap();
    // Attach, train (which changes the function), then detach.
    PeftMethod::lora_default().apply(&mut model, 2);
    train(&mut model, 5, 4);
    let tuned = model
        .execute(StepRequest::infer(&ids, 1, 8))
        .logits
        .unwrap();
    assert_ne!(
        pristine.as_slice(),
        tuned.as_slice(),
        "training must change the function while attached"
    );
    detach(&mut model);
    let back = model
        .execute(StepRequest::infer(&ids, 1, 8))
        .logits
        .unwrap();
    assert_eq!(
        pristine.as_slice(),
        back.as_slice(),
        "detach must restore the pristine backbone exactly"
    );
}

#[test]
fn adapters_from_two_tenants_are_independent() {
    // Two tenants trained on the same backbone at different times must not
    // bleed into each other: attaching tenant A after tenant B trained must
    // reproduce A's function exactly.
    let mut model = tiny_model(9);
    model.freeze_all();
    let method = PeftMethod::lora_default();
    let ids = batch_ids(1, 8, tiny_cfg().vocab_size, 7);

    method.apply(&mut model, 100);
    train(&mut model, 5, 41);
    let a_logits = model
        .execute(StepRequest::infer(&ids, 1, 8))
        .logits
        .unwrap();
    let a = TenantAdapter::extract_from(&mut model, method, 100);
    detach(&mut model);

    method.apply(&mut model, 200);
    train(&mut model, 9, 43);
    let b_logits = model
        .execute(StepRequest::infer(&ids, 1, 8))
        .logits
        .unwrap();
    let b = TenantAdapter::extract_from(&mut model, method, 200);
    detach(&mut model);

    assert_ne!(a_logits.as_slice(), b_logits.as_slice());

    a.attach_to(&mut model);
    assert_eq!(
        model
            .execute(StepRequest::infer(&ids, 1, 8))
            .logits
            .unwrap()
            .as_slice(),
        a_logits.as_slice()
    );
    detach(&mut model);
    b.attach_to(&mut model);
    assert_eq!(
        model
            .execute(StepRequest::infer(&ids, 1, 8))
            .logits
            .unwrap()
            .as_slice(),
        b_logits.as_slice()
    );
}
