//! Software IEEE binary16 ("half") support.
//!
//! The paper fine-tunes with mixed precision: FP16 parameters, FP32
//! activations (§VII-A). This reproduction keeps all *compute* in f32 (CPU
//! half arithmetic would distort timings) but stores frozen parameters as f16
//! where the memory experiments need faithful footprints, and rounds through
//! f16 to emulate the precision loss of mixed-precision storage.

/// Convert an `f32` to IEEE binary16 bits (round-to-nearest-even).
pub fn f32_to_f16_bits(value: f32) -> u16 {
    let bits = value.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let frac = bits & 0x007f_ffff;

    if exp == 0xff {
        // Inf / NaN. Preserve a NaN payload bit so NaN stays NaN.
        let nan_bit = if frac != 0 { 0x0200 } else { 0 };
        return sign | 0x7c00 | nan_bit | ((frac >> 13) as u16 & 0x03ff);
    }

    // Re-bias exponent from 127 to 15.
    let unbiased = exp - 127;
    if unbiased > 15 {
        return sign | 0x7c00; // overflow -> inf
    }
    if unbiased >= -14 {
        // Normal half. Round-to-nearest-even on the 13 truncated bits.
        let mut mant = frac >> 13;
        let rem = frac & 0x1fff;
        if rem > 0x1000 || (rem == 0x1000 && (mant & 1) == 1) {
            mant += 1;
        }
        let mut e = (unbiased + 15) as u32;
        if mant == 0x400 {
            // Mantissa rounded up past 10 bits: bump exponent.
            mant = 0;
            e += 1;
            if e >= 31 {
                return sign | 0x7c00;
            }
        }
        return sign | ((e as u16) << 10) | (mant as u16);
    }
    if unbiased >= -24 {
        // Subnormal half.
        let full = frac | 0x0080_0000; // implicit leading 1
        let shift = (-14 - unbiased) as u32 + 13;
        let mut mant = full >> shift;
        let rem_mask = (1u32 << shift) - 1;
        let rem = full & rem_mask;
        let half = 1u32 << (shift - 1);
        if rem > half || (rem == half && (mant & 1) == 1) {
            mant += 1;
        }
        return sign | (mant as u16);
    }
    sign // underflow -> signed zero
}

/// Convert IEEE binary16 bits back to `f32`.
pub fn f16_bits_to_f32(bits: u16) -> f32 {
    let sign = ((bits & 0x8000) as u32) << 16;
    let exp = ((bits >> 10) & 0x1f) as u32;
    let frac = (bits & 0x03ff) as u32;
    let out = if exp == 0 {
        if frac == 0 {
            sign
        } else {
            // Subnormal: normalise.
            let mut e = 127 - 15 + 1;
            let mut f = frac;
            while f & 0x0400 == 0 {
                f <<= 1;
                e -= 1;
            }
            sign | ((e as u32) << 23) | ((f & 0x03ff) << 13)
        }
    } else if exp == 0x1f {
        sign | 0x7f80_0000 | (frac << 13)
    } else {
        sign | ((exp + 127 - 15) << 23) | (frac << 13)
    };
    f32::from_bits(out)
}

/// Round an `f32` through f16 precision (the storage round-trip).
pub fn round_f16(value: f32) -> f32 {
    f16_bits_to_f32(f32_to_f16_bits(value))
}

/// A parameter buffer stored at half precision.
///
/// Reads decompress to f32; the buffer reports its true (2-byte) footprint to
/// the memory simulator.
#[derive(Debug, Clone)]
pub struct HalfBuffer {
    bits: Vec<u16>,
}

impl HalfBuffer {
    pub fn from_f32(values: &[f32]) -> Self {
        HalfBuffer {
            bits: values.iter().map(|&v| f32_to_f16_bits(v)).collect(),
        }
    }

    pub fn to_f32(&self) -> Vec<f32> {
        self.bits.iter().map(|&b| f16_bits_to_f32(b)).collect()
    }

    pub fn len(&self) -> usize {
        self.bits.len()
    }

    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Bytes occupied by the half-precision storage.
    pub fn bytes(&self) -> usize {
        self.bits.len() * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_values_roundtrip() {
        for &v in &[0.0f32, 1.0, -1.0, 0.5, 2.0, -0.25, 65504.0] {
            assert_eq!(round_f16(v), v, "{v} should be exactly representable");
        }
    }

    #[test]
    fn signed_zero_preserved() {
        assert_eq!(f32_to_f16_bits(-0.0), 0x8000);
        assert_eq!(f32_to_f16_bits(0.0), 0x0000);
    }

    #[test]
    fn overflow_saturates_to_inf() {
        assert!(round_f16(1e6).is_infinite());
        assert!(round_f16(-1e6).is_infinite() && round_f16(-1e6) < 0.0);
    }

    #[test]
    fn nan_stays_nan() {
        assert!(round_f16(f32::NAN).is_nan());
    }

    #[test]
    fn subnormals_roundtrip_with_tolerance() {
        let v = 3.0e-6f32; // subnormal range of f16 (min normal ≈ 6.1e-5)
        let r = round_f16(v);
        assert!(r > 0.0 && (r - v).abs() / v < 0.05, "{v} -> {r}");
    }

    #[test]
    fn tiny_underflows_to_zero() {
        assert_eq!(round_f16(1e-9), 0.0);
    }

    #[test]
    fn roundtrip_error_is_bounded() {
        let vals = crate::rng::randn_vec(10_000, 1.0, 99);
        for v in vals {
            let r = round_f16(v);
            // Half has ~3.3 decimal digits: relative error < 2^-10.
            assert!((r - v).abs() <= v.abs() * 1e-3 + 1e-7, "{v} -> {r}");
        }
    }

    #[test]
    fn half_buffer_accounting() {
        let vals = vec![1.0f32, 2.5, -3.25, 0.0];
        let buf = HalfBuffer::from_f32(&vals);
        assert_eq!(buf.bytes(), 8);
        assert_eq!(buf.to_f32(), vals);
    }

    #[test]
    fn round_to_nearest_even() {
        // 1 + 2^-11 is exactly halfway between two f16 values; ties-to-even
        // keeps the even mantissa (1.0).
        let v = 1.0 + 2.0_f32.powi(-11);
        assert_eq!(round_f16(v), 1.0);
        // 1 + 3*2^-11 is halfway between mantissas 1 and 2; even mantissa (2)
        // wins, giving 1 + 2^-9.
        let v2 = 1.0 + 3.0 * 2.0_f32.powi(-11);
        assert_eq!(round_f16(v2), 1.0 + 2.0_f32.powi(-9));
    }
}
