//! Token + positional embeddings with optional trainable prompt prefix
//! (the P-Tuning / prompt-tuning PEFT method of Table I).
//!
//! With a prompt of length `p`, each batch row becomes
//! `[prompt_0..prompt_p, tok_0..tok_s]`; positions shift accordingly and the
//! loss must ignore the first `p` positions (callers mark them with the
//! ignore index).

use crate::param::Param;
use lx_tensor::Tensor;

#[derive(Debug)]
pub struct Embedding {
    pub tokens: Param,
    pub positions: Param,
    /// Trainable virtual-token prefix `[p, d]` (prompt tuning).
    pub prompt: Option<Param>,
    d_model: usize,
    cache: Option<EmbCache>,
    /// Retired ids buffer parked between steps so the per-step id copy
    /// reuses one allocation instead of a fresh `to_vec` every forward.
    spare_ids: Vec<u32>,
}

#[derive(Debug)]
struct EmbCache {
    /// The step's ids, copied into a buffer whose allocation is reused
    /// across steps (see [`Embedding::forward`]).
    ids: Vec<u32>,
    batch: usize,
    seq: usize,
}

impl Embedding {
    pub fn new(vocab: usize, max_seq: usize, d_model: usize, seed: u64) -> Self {
        Embedding {
            tokens: Param::frozen("embed.tokens", Tensor::randn(&[vocab, d_model], 0.02, seed)),
            positions: Param::frozen(
                "embed.positions",
                Tensor::randn(&[max_seq, d_model], 0.02, seed.wrapping_add(1)),
            ),
            prompt: None,
            d_model,
            cache: None,
            spare_ids: Vec::new(),
        }
    }

    /// Attach a trainable prompt of `p` virtual tokens.
    pub fn attach_prompt(&mut self, p: usize, seed: u64) {
        self.prompt = Some(Param::new(
            "embed.prompt",
            Tensor::randn(&[p, self.d_model], 0.02, seed),
            true,
        ));
    }

    pub fn prompt_len(&self) -> usize {
        self.prompt.as_ref().map_or(0, |p| p.value.shape()[0])
    }

    /// Effective sequence length seen by the blocks.
    pub fn effective_seq(&self, seq: usize) -> usize {
        seq + self.prompt_len()
    }

    /// Embed `ids` (`batch × seq`, row-major) into `[batch·(p+seq), d]`.
    pub fn forward(&mut self, ids: &[u32], batch: usize, seq: usize) -> Tensor {
        assert_eq!(ids.len(), batch * seq, "ids must be batch×seq");
        let p = self.prompt_len();
        let eff = seq + p;
        assert!(
            eff <= self.positions.shape()[0],
            "sequence {eff} exceeds max positions"
        );
        let d = self.d_model;
        let mut out = Tensor::zeros(&[batch * eff, d]);
        for b in 0..batch {
            for s in 0..eff {
                // Row lookups go through the dtype-dispatching Param
                // helpers: frozen tables may be half-stored and decode on
                // load; the trainable prompt is always f32.
                let row = out.row_mut(b * eff + s);
                if s < p {
                    self.prompt.as_ref().unwrap().copy_row_into(s, row);
                } else {
                    let tok = ids[b * seq + (s - p)] as usize;
                    self.tokens.copy_row_into(tok, row);
                }
                self.positions.add_row_into(s, row);
            }
        }
        let mut ids_buf = std::mem::take(&mut self.spare_ids);
        ids_buf.clear();
        ids_buf.extend_from_slice(ids);
        self.cache = Some(EmbCache {
            ids: ids_buf,
            batch,
            seq,
        });
        out
    }

    /// Accumulate grads into whatever is trainable (prompt, token table,
    /// position table).
    pub fn backward(&mut self, dout: &Tensor) {
        let cache = self
            .cache
            .take()
            .expect("Embedding::backward without forward");
        let p = self.prompt_len();
        let eff = cache.seq + p;
        let d = self.d_model;
        assert_eq!(dout.rows(), cache.batch * eff);
        if let Some(prompt) = &mut self.prompt {
            if prompt.trainable {
                let g = prompt.grad_mut();
                for b in 0..cache.batch {
                    for s in 0..p {
                        let src = dout.row(b * eff + s);
                        let dst = &mut g.as_mut_slice()[s * d..(s + 1) * d];
                        for (o, v) in dst.iter_mut().zip(src) {
                            *o += v;
                        }
                    }
                }
            }
        }
        if self.tokens.trainable {
            // Two-phase to satisfy the borrow checker: gather then scatter.
            let mut updates: Vec<(usize, usize)> = Vec::new();
            for b in 0..cache.batch {
                for s in p..eff {
                    updates.push((cache.ids[b * cache.seq + (s - p)] as usize, b * eff + s));
                }
            }
            let g = self.tokens.grad_mut();
            for (tok, row) in updates {
                let src = dout.row(row);
                let dst = &mut g.as_mut_slice()[tok * d..(tok + 1) * d];
                for (o, v) in dst.iter_mut().zip(src) {
                    *o += v;
                }
            }
        }
        if self.positions.trainable {
            let g = self.positions.grad_mut();
            for b in 0..cache.batch {
                for s in 0..eff {
                    let src = dout.row(b * eff + s);
                    let dst = &mut g.as_mut_slice()[s * d..(s + 1) * d];
                    for (o, v) in dst.iter_mut().zip(src) {
                        *o += v;
                    }
                }
            }
        }
        // Park the ids buffer for the next forward.
        self.spare_ids = cache.ids;
    }

    pub fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.tokens);
        f(&mut self.positions);
        if let Some(p) = &mut self.prompt {
            f(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_adds_token_and_position() {
        let mut emb = Embedding::new(10, 8, 4, 1);
        let ids = vec![3u32, 7, 1, 2];
        let out = emb.forward(&ids, 2, 2);
        assert_eq!(out.shape(), &[4, 4]);
        // Row (b=0, s=1): tokens[7] + positions[1].
        let expect: Vec<f32> = emb.tokens.value.as_slice()[7 * 4..8 * 4]
            .iter()
            .zip(&emb.positions.value.as_slice()[4..8])
            .map(|(a, b)| a + b)
            .collect();
        assert_eq!(out.row(1), &expect[..]);
    }

    #[test]
    fn prompt_prepends_and_shifts_positions() {
        let mut emb = Embedding::new(10, 16, 4, 2);
        emb.attach_prompt(2, 3);
        assert_eq!(emb.effective_seq(3), 5);
        let ids = vec![1u32, 2, 3];
        let out = emb.forward(&ids, 1, 3);
        assert_eq!(out.rows(), 5);
        // Row 0 = prompt[0] + positions[0].
        let prompt = emb.prompt.as_ref().unwrap();
        let expect: Vec<f32> = prompt.value.as_slice()[0..4]
            .iter()
            .zip(&emb.positions.value.as_slice()[0..4])
            .map(|(a, b)| a + b)
            .collect();
        assert_eq!(out.row(0), &expect[..]);
        // Row 2 = tokens[1] + positions[2].
        let expect2: Vec<f32> = emb.tokens.value.as_slice()[4..8]
            .iter()
            .zip(&emb.positions.value.as_slice()[8..12])
            .map(|(a, b)| a + b)
            .collect();
        assert_eq!(out.row(2), &expect2[..]);
    }

    #[test]
    fn backward_routes_grads_by_trainability() {
        let mut emb = Embedding::new(6, 8, 4, 4);
        emb.attach_prompt(1, 5);
        let ids = vec![2u32, 2];
        let out = emb.forward(&ids, 1, 2);
        let dout = Tensor::full(&[out.rows(), 4], 1.0);
        emb.backward(&dout);
        // Only the prompt is trainable by default.
        assert!(emb.tokens.grad.is_none());
        assert!(emb.positions.grad.is_none());
        let pg = emb.prompt.as_ref().unwrap().grad.as_ref().unwrap();
        assert_eq!(pg.as_slice(), &[1.0; 4]);

        // Token gradients accumulate across repeated ids.
        emb.tokens.trainable = true;
        let _ = emb.forward(&ids, 1, 2);
        emb.backward(&dout);
        let tg = emb.tokens.grad.as_ref().unwrap();
        assert_eq!(&tg.as_slice()[2 * 4..3 * 4], &[2.0; 4]); // id 2 hit twice
        assert_eq!(&tg.as_slice()[0..4], &[0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "exceeds max positions")]
    fn over_long_sequence_panics() {
        let mut emb = Embedding::new(6, 4, 4, 6);
        let ids = vec![0u32; 5];
        emb.forward(&ids, 1, 5);
    }
}
