//! Predictor checkpointing.
//!
//! Predictors are trained offline (§V-B) and reused across fine-tuning runs
//! of the same backbone, so they need a durable format. The format is a
//! small header + raw little-endian f32 payloads via `bytes`, with a JSON
//! metadata block describing shapes — readable by external tooling.

use crate::predictor::{AttnPredictor, MlpPredictor};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use lx_tensor::Tensor;

const MAGIC: &[u8; 8] = b"LXPRED01";

/// Shape metadata stored alongside the raw weights.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointMeta {
    pub d_model: usize,
    pub n_heads: usize,
    pub rank: usize,
    pub n_layers: usize,
    pub mlp_blocks: usize,
    pub block_size: usize,
}

impl CheckpointMeta {
    const FIELDS: [&'static str; 6] = [
        "d_model",
        "n_heads",
        "rank",
        "n_layers",
        "mlp_blocks",
        "block_size",
    ];

    fn field(&self, name: &str) -> usize {
        match name {
            "d_model" => self.d_model,
            "n_heads" => self.n_heads,
            "rank" => self.rank,
            "n_layers" => self.n_layers,
            "mlp_blocks" => self.mlp_blocks,
            "block_size" => self.block_size,
            _ => unreachable!("unknown meta field {name}"),
        }
    }

    fn field_mut(&mut self, name: &str) -> &mut usize {
        match name {
            "d_model" => &mut self.d_model,
            "n_heads" => &mut self.n_heads,
            "rank" => &mut self.rank,
            "n_layers" => &mut self.n_layers,
            "mlp_blocks" => &mut self.mlp_blocks,
            "block_size" => &mut self.block_size,
            _ => unreachable!("unknown meta field {name}"),
        }
    }

    /// Serialise as a flat JSON object (readable by external tooling).
    pub fn to_json(&self) -> Vec<u8> {
        let body: Vec<String> = Self::FIELDS
            .iter()
            .map(|f| format!("\"{f}\":{}", self.field(f)))
            .collect();
        format!("{{{}}}", body.join(",")).into_bytes()
    }

    /// Parse the flat JSON object written by [`CheckpointMeta::to_json`].
    pub fn from_json(data: &[u8]) -> Result<Self, String> {
        let text = std::str::from_utf8(data).map_err(|e| format!("meta not UTF-8: {e}"))?;
        let inner = text
            .trim()
            .strip_prefix('{')
            .and_then(|t| t.strip_suffix('}'))
            .ok_or_else(|| format!("meta not a JSON object: {text}"))?;
        let mut meta = CheckpointMeta {
            d_model: 0,
            n_heads: 0,
            rank: 0,
            n_layers: 0,
            mlp_blocks: 0,
            block_size: 0,
        };
        let mut seen = [false; Self::FIELDS.len()];
        for pair in inner.split(',') {
            let (key, value) = pair
                .split_once(':')
                .ok_or_else(|| format!("bad meta entry: {pair}"))?;
            let key = key.trim().trim_matches('"');
            let value: usize = value
                .trim()
                .parse()
                .map_err(|e| format!("bad meta value for {key}: {e}"))?;
            let idx = Self::FIELDS
                .iter()
                .position(|f| *f == key)
                .ok_or_else(|| format!("unknown meta field {key}"))?;
            if seen[idx] {
                return Err(format!("duplicate meta field {key}"));
            }
            seen[idx] = true;
            *meta.field_mut(key) = value;
        }
        if let Some(idx) = seen.iter().position(|s| !s) {
            return Err(format!("meta is missing field {}", Self::FIELDS[idx]));
        }
        // Plausibility bounds: these drive allocations in `load_predictors`
        // *before* any payload check, so a corrupt header must fail here
        // rather than abort on a multi-gigabyte Vec. Individual fields are
        // not enough — the allocations are *products* of fields
        // (`AttnPredictor::new` builds n_heads pairs of [d_model, rank]
        // tensors per layer, `MlpPredictor::new` a [d_model, mlp_blocks]
        // tensor), so bound the total element count a load would allocate.
        const MAX_DIM: usize = 1 << 20;
        for f in Self::FIELDS {
            let v = meta.field(f);
            if v == 0 || v > MAX_DIM {
                return Err(format!("meta field {f} = {v} out of range 1..={MAX_DIM}"));
            }
        }
        const MAX_TOTAL_ELEMS: usize = 1 << 28; // ~1 GiB of f32
        let per_layer = meta
            .d_model
            .checked_mul(meta.rank)
            .and_then(|v| v.checked_mul(meta.n_heads))
            .and_then(|v| v.checked_mul(2))
            .and_then(|v| v.checked_add(meta.d_model * meta.mlp_blocks));
        let total = per_layer.and_then(|v| v.checked_mul(meta.n_layers));
        match total {
            Some(t) if t <= MAX_TOTAL_ELEMS => Ok(meta),
            _ => Err(format!(
                "meta implies an implausibly large predictor set ({total:?} elements, cap {MAX_TOTAL_ELEMS})"
            )),
        }
    }
}

/// Serialise all layers' predictors into one buffer.
pub fn save_predictors(
    meta: &CheckpointMeta,
    attn: &[AttnPredictor],
    mlp: &[MlpPredictor],
) -> Bytes {
    assert_eq!(attn.len(), meta.n_layers);
    assert_eq!(mlp.len(), meta.n_layers);
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    let meta_json = meta.to_json();
    buf.put_u32_le(meta_json.len() as u32);
    buf.put_slice(&meta_json);
    for layer in attn {
        for (wq, wk) in &layer.heads {
            put_tensor(&mut buf, wq);
            put_tensor(&mut buf, wk);
        }
        for &s in &layer.distance_slopes {
            buf.put_f32_le(s);
        }
        for &b in &layer.bias {
            buf.put_f32_le(b);
        }
    }
    for layer in mlp {
        put_tensor(&mut buf, &layer.wa);
    }
    buf.freeze()
}

/// Reconstruct predictors from a buffer produced by [`save_predictors`].
pub fn load_predictors(
    mut data: Bytes,
) -> Result<(CheckpointMeta, Vec<AttnPredictor>, Vec<MlpPredictor>), String> {
    if data.remaining() < 12 {
        return Err("truncated checkpoint".into());
    }
    let mut magic = [0u8; 8];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(format!("bad magic {magic:?}"));
    }
    let meta_len = data.get_u32_le() as usize;
    if data.remaining() < meta_len {
        return Err("truncated metadata".into());
    }
    let meta_bytes = data.copy_to_bytes(meta_len);
    let meta = CheckpointMeta::from_json(&meta_bytes).map_err(|e| format!("bad metadata: {e}"))?;
    let mut attn = Vec::with_capacity(meta.n_layers);
    for l in 0..meta.n_layers {
        let mut p = AttnPredictor::new(meta.d_model, meta.n_heads, meta.rank, 0);
        for h in 0..meta.n_heads {
            p.heads[h].0 = get_tensor(&mut data, &[meta.d_model, meta.rank])
                .ok_or_else(|| format!("truncated wq layer {l} head {h}"))?;
            p.heads[h].1 = get_tensor(&mut data, &[meta.d_model, meta.rank])
                .ok_or_else(|| format!("truncated wk layer {l} head {h}"))?;
        }
        let mut slopes = Vec::with_capacity(meta.n_heads);
        for _ in 0..meta.n_heads {
            if data.remaining() < 4 {
                return Err("truncated slopes".into());
            }
            slopes.push(data.get_f32_le());
        }
        p.set_distance_slopes(slopes, meta.block_size);
        for h in 0..meta.n_heads {
            if data.remaining() < 4 {
                return Err("truncated head bias".into());
            }
            p.bias[h] = data.get_f32_le();
        }
        attn.push(p);
    }
    let mut mlp = Vec::with_capacity(meta.n_layers);
    for l in 0..meta.n_layers {
        let mut p = MlpPredictor::new(
            meta.d_model,
            meta.mlp_blocks * meta.block_size,
            meta.block_size,
            0,
        );
        p.wa = get_tensor(&mut data, &[meta.d_model, meta.mlp_blocks])
            .ok_or_else(|| format!("truncated wa layer {l}"))?;
        mlp.push(p);
    }
    if data.has_remaining() {
        return Err(format!("{} trailing bytes", data.remaining()));
    }
    Ok((meta, attn, mlp))
}

fn put_tensor(buf: &mut BytesMut, t: &Tensor) {
    buf.put_u32_le(t.len() as u32);
    for &v in t.as_slice() {
        buf.put_f32_le(v);
    }
}

fn get_tensor(data: &mut Bytes, shape: &[usize]) -> Option<Tensor> {
    if data.remaining() < 4 {
        return None;
    }
    let len = data.get_u32_le() as usize;
    if len != shape.iter().product::<usize>() || data.remaining() < len * 4 {
        return None;
    }
    let mut vals = Vec::with_capacity(len);
    for _ in 0..len {
        vals.push(data.get_f32_le());
    }
    Some(Tensor::from_vec(vals, shape))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (CheckpointMeta, Vec<AttnPredictor>, Vec<MlpPredictor>) {
        let meta = CheckpointMeta {
            d_model: 8,
            n_heads: 2,
            rank: 3,
            n_layers: 2,
            mlp_blocks: 4,
            block_size: 4,
        };
        let attn: Vec<AttnPredictor> = (0..2)
            .map(|l| {
                let mut p = AttnPredictor::new(8, 2, 3, 100 + l);
                p.set_distance_slopes(vec![0.25, 0.5], 4);
                p.bias = vec![0.1, -0.2];
                p
            })
            .collect();
        let mlp: Vec<MlpPredictor> = (0..2)
            .map(|l| MlpPredictor::new(8, 16, 4, 200 + l))
            .collect();
        (meta, attn, mlp)
    }

    #[test]
    fn roundtrip_preserves_weights() {
        let (meta, attn, mlp) = sample();
        let bytes = save_predictors(&meta, &attn, &mlp);
        let (meta2, attn2, mlp2) = load_predictors(bytes).expect("load");
        assert_eq!(meta, meta2);
        for (a, b) in attn.iter().zip(&attn2) {
            for ((wq, wk), (wq2, wk2)) in a.heads.iter().zip(&b.heads) {
                assert_eq!(wq.as_slice(), wq2.as_slice());
                assert_eq!(wk.as_slice(), wk2.as_slice());
            }
            assert_eq!(a.distance_slopes, b.distance_slopes);
            assert_eq!(a.bias, b.bias);
            assert_eq!(a.block_size, b.block_size);
        }
        for (a, b) in mlp.iter().zip(&mlp2) {
            assert_eq!(a.wa.as_slice(), b.wa.as_slice());
        }
    }

    #[test]
    fn loaded_predictors_predict_identically() {
        let (meta, attn, mlp) = sample();
        let bytes = save_predictors(&meta, &attn, &mlp);
        let (_, attn2, mlp2) = load_predictors(bytes).unwrap();
        let x = Tensor::randn(&[16, 8], 1.0, 5);
        let m1 = attn[0].predict_masks(&x, 1, 16, 4);
        let m2 = attn2[0].predict_masks(&x, 1, 16, 4);
        assert_eq!(m1, m2);
        assert_eq!(mlp[0].predict(&x), mlp2[0].predict(&x));
    }

    #[test]
    fn corrupt_magic_rejected() {
        let (meta, attn, mlp) = sample();
        let mut raw = save_predictors(&meta, &attn, &mlp).to_vec();
        raw[0] = b'X';
        assert!(load_predictors(Bytes::from(raw)).is_err());
    }

    #[test]
    fn truncated_payload_rejected() {
        let (meta, attn, mlp) = sample();
        let raw = save_predictors(&meta, &attn, &mlp).to_vec();
        let cut = Bytes::from(raw[..raw.len() - 5].to_vec());
        assert!(load_predictors(cut).is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        let (meta, attn, mlp) = sample();
        let mut raw = save_predictors(&meta, &attn, &mlp).to_vec();
        raw.extend_from_slice(&[0, 1, 2]);
        assert!(load_predictors(Bytes::from(raw)).is_err());
    }

    #[test]
    fn hostile_meta_rejected_before_allocation() {
        // Duplicate key masking a missing one.
        let dup = br#"{"d_model":8,"d_model":8,"n_heads":2,"rank":3,"n_layers":2,"mlp_blocks":4}"#;
        assert!(CheckpointMeta::from_json(dup).is_err());
        // Zero field.
        let zero =
            br#"{"d_model":8,"n_heads":2,"rank":0,"n_layers":2,"mlp_blocks":4,"block_size":4}"#;
        assert!(CheckpointMeta::from_json(zero).is_err());
        // Fields individually within bounds but whose product would allocate
        // petabytes in load_predictors.
        let huge = format!(
            "{{\"d_model\":{0},\"n_heads\":{0},\"rank\":{0},\"n_layers\":2,\"mlp_blocks\":4,\"block_size\":4}}",
            1usize << 20
        );
        assert!(CheckpointMeta::from_json(huge.as_bytes()).is_err());
    }
}
