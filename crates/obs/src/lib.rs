//! Unified tracing and metrics for the Long Exposure stack.
//!
//! The paper's argument is a time-accounting argument — Table I / Fig. 10
//! per-phase breakdowns justify shadowy-sparsity exploitation — so the repo
//! needs one substrate that can answer "where did this step's time go?"
//! end-to-end, across kernels, model phases, and serve scheduling. This
//! crate is that substrate: standard-library only (it sits below every other
//! crate in the workspace), thread-safe, and near-free when idle.
//!
//! ## Three pieces
//!
//! * **Spans** ([`Span`], [`TimedSpan`]) — RAII interval records (name,
//!   category, optional tenant/layer/index labels, start, duration) pushed
//!   into the active [`TraceSession`]'s ring buffer. When no session is
//!   active a [`Span`] costs one relaxed atomic load; a [`TimedSpan`] always
//!   measures and hands its duration back through
//!   [`finish`](TimedSpan::finish), so call sites that consume the duration
//!   anyway (the `StepOutcome` phase columns) pay nothing extra — and the
//!   recorded span is *the same measurement*, bit for bit.
//! * **Metrics** ([`Counter`], [`Histogram`], [`Registry`]) — always-on
//!   process-wide atomics. Histograms are log-bucketed (≤ ~7% relative
//!   error) with p50/p90/p99 readout. [`Registry::render_prometheus`] emits
//!   the whole registry in Prometheus text exposition format.
//! * **Traces** ([`TraceSession`], [`Trace`]) — start a session, run work,
//!   [`finish`](TraceSession::finish) it, then export: Chrome trace-event
//!   JSON ([`Trace::write_chrome`], loadable in `chrome://tracing` or
//!   [Perfetto](https://ui.perfetto.dev)) or a human text summary
//!   ([`Trace::summary`]).
//!
//! ## Span and metric naming
//!
//! Dotted, lowercase, coarse-to-fine: `model.step`, `model.micro_batch`,
//! `model.forward_pass`, `model.predict`, `model.layer`, `model.backward`,
//! `model.optimizer`, `serve.slice`, `serve.attach`, `serve.detach`,
//! `engine.calibrate`. Metrics follow the same scheme with a unit suffix on
//! histograms (`serve.step.ns`); labelled variants embed Prometheus-style
//! labels in the key (`serve.slice.run_ns{tenant="a"}`), which
//! [`Registry::counter_labeled`]/[`Registry::histogram_labeled`] build for
//! you.
//!
//! ## Example
//!
//! ```
//! let session = lx_obs::TraceSession::start().expect("no other session");
//! {
//!     let _outer = lx_obs::Span::enter("demo.outer").cat("demo");
//!     let inner = lx_obs::TimedSpan::enter("demo.inner").cat("demo");
//!     let took = inner.finish(); // the recorded duration, returned to you
//!     assert!(took.as_nanos() > 0);
//! }
//! let trace = session.finish();
//! assert_eq!(trace.records.len(), 2);
//! let json = trace.to_chrome_json();
//! lx_obs::validate_chrome_trace(&json).expect("well-formed trace");
//! ```

mod chrome;
mod clock;
mod metrics;
mod span;

pub use chrome::{validate_chrome_trace, validate_chrome_trace_file, TraceStats};
pub use clock::now_ns;
pub use metrics::{registry, Counter, Histogram, HistogramSummary, Registry};
pub use span::{
    force_timing, inert_span_cost_ns, timing_enabled, tracing_active, Span, SpanRecord, TimedSpan,
    Trace, TraceSession,
};
