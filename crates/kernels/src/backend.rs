//! The [`KernelBackend`] trait and the [`Reference`] scalar backend.
//!
//! All three GEMM variants take *leading dimensions* (`lda`/`ldb`/`ldc`, in
//! elements), so a caller can point a kernel at a strided window of a larger
//! buffer — a block column of a compact activation matrix, a neuron slab of a
//! weight matrix — without copying. A leading dimension equal to the logical
//! width is the contiguous case.
//!
//! Slice length contract (checked): a matrix view of `r` rows × `c` cols with
//! leading dimension `ld ≥ c` needs at least `(r−1)·ld + c` elements and at
//! most `r·ld` (so views carved out of a larger buffer, whose final row stops
//! at the logical width, are accepted).

use crate::epilogue::{apply_epilogue, Epilogue};
use lx_parallel::par_rows;

/// Don't fan a GEMM out across the pool unless a task has at least this many
/// fused mul-adds (same constant the original loop kernels used).
pub(crate) const GRAIN_FLOPS: usize = 1 << 16;

pub(crate) fn row_grain(k: usize, n: usize) -> usize {
    (GRAIN_FLOPS / (k * n).max(1)).max(1)
}

/// Check a `rows × cols` view with leading dimension `ld`.
#[track_caller]
pub(crate) fn check_view(len: usize, rows: usize, cols: usize, ld: usize, what: &str) {
    assert!(ld >= cols, "{what}: leading dim {ld} < width {cols}");
    if rows == 0 || cols == 0 {
        return;
    }
    let need = (rows - 1) * ld + cols;
    assert!(
        len >= need,
        "{what}: {len} elements < {need} needed for {rows}x{cols} (ld {ld})"
    );
}

/// A family of GEMM kernels sharing one storage convention (row-major with
/// leading dimensions). Implementations must tolerate degenerate shapes
/// (`m`, `k` or `n` of 0) and must scale `C` by `beta` exactly once.
/// `beta == 0.0` means *overwrite*: prior contents of `C` — including NaN —
/// must not leak into the result.
#[allow(clippy::too_many_arguments)]
pub trait KernelBackend: Sync {
    /// Short name for dispatch logs and benches.
    fn name(&self) -> &'static str;

    /// `C[m,n] = A[m,k] · B[k,n] + beta·C`.
    fn gemm(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: &[f32],
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    );

    /// `C[m,n] = A[m,k] · B[n,k]ᵀ + beta·C` — B stored row-major as `n×k`.
    fn gemm_nt(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: &[f32],
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    );

    /// `C[m,n] = A[k,m]ᵀ · B[k,n] + beta·C` — A stored row-major as `k×m`.
    /// This is the gradient-of-weights shape (`dW = Xᵀ·dY`).
    fn gemm_tn(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: &[f32],
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    );

    /// [`gemm`](Self::gemm) with **B stored as f16 bits** (`k×n` row-major).
    ///
    /// Mixed-precision contract: each B element is decoded to f32 (an exact
    /// conversion) and every multiply and accumulation runs in f32, so the
    /// result matches decoding B up front and calling the f32 variant.
    /// Backends fuse the decode into their load/pack stage; this default
    /// materialises an f32 copy of B and is meant only for backends without
    /// a fused path.
    fn gemm_f16(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: &[u16],
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        let mut bf = vec![0.0f32; b.len()];
        crate::half::decode_slice(b, &mut bf);
        self.gemm(m, k, n, a, lda, &bf, ldb, c, ldc, beta)
    }

    /// [`gemm_nt`](Self::gemm_nt) with **B stored as f16 bits** (`n×k`
    /// row-major). Same mixed-precision contract as
    /// [`gemm_f16`](Self::gemm_f16).
    fn gemm_nt_f16(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: &[u16],
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        let mut bf = vec![0.0f32; b.len()];
        crate::half::decode_slice(b, &mut bf);
        self.gemm_nt(m, k, n, a, lda, &bf, ldb, c, ldc, beta)
    }

    /// [`gemm`](Self::gemm) with **B stored block-quantized int8** (`k×n`
    /// row-major element space; the view carries codes and per-block
    /// scales). Mixed-precision contract as [`gemm_f16`](Self::gemm_f16):
    /// each element dequantizes to f32 (`code · scale`, exact) and all
    /// arithmetic runs in f32, so the result matches dequantizing B up front
    /// and calling the f32 variant. Backends fuse the dequant into their
    /// load/pack stage; this default materialises f32 B.
    fn gemm_q8(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: lx_quant::Q8View<'_>,
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        let bf = materialize_q8(b);
        self.gemm(m, k, n, a, lda, &bf, ldb, c, ldc, beta)
    }

    /// [`gemm_nt`](Self::gemm_nt) with **B stored block-quantized int8**
    /// (`n×k` row-major element space).
    fn gemm_nt_q8(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: lx_quant::Q8View<'_>,
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        let bf = materialize_q8(b);
        self.gemm_nt(m, k, n, a, lda, &bf, ldb, c, ldc, beta)
    }

    /// [`gemm`](Self::gemm) with **B stored NF4** (4-bit codebook codes,
    /// `k×n` row-major element space). Same contract as
    /// [`gemm_q8`](Self::gemm_q8) with dequant `codebook[code] · scale`.
    fn gemm_q4(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: lx_quant::Q4View<'_>,
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        let bf = materialize_q4(b);
        self.gemm(m, k, n, a, lda, &bf, ldb, c, ldc, beta)
    }

    /// [`gemm_nt`](Self::gemm_nt) with **B stored NF4** (`n×k` row-major
    /// element space).
    fn gemm_nt_q4(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: lx_quant::Q4View<'_>,
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        let bf = materialize_q4(b);
        self.gemm_nt(m, k, n, a, lda, &bf, ldb, c, ldc, beta)
    }

    /// [`gemm`](Self::gemm) with **B stored N:M structured-sparse** (`k×n`
    /// row-major element space; the view carries compacted values plus group
    /// bitmasks). Kept values decode bit-exactly and pruned positions decode
    /// to exact `0.0`, so — unlike the quantized arms — the decode is
    /// *lossless*: the result must be bit-identical to decoding B up front
    /// and calling the f32 variant with the same backend. Backends fuse the
    /// group expansion into their load/pack stage (and may skip all-zero
    /// groups entirely); this default materialises f32 B.
    fn gemm_nm(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: lx_quant::NmView<'_>,
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        let bf = materialize_nm(b);
        self.gemm(m, k, n, a, lda, &bf, ldb, c, ldc, beta)
    }

    /// [`gemm_nt`](Self::gemm_nt) with **B stored N:M structured-sparse**
    /// (`n×k` row-major element space) — the frozen-backbone forward shape:
    /// each output neuron's weight row is N:M sparse along `k`.
    fn gemm_nt_nm(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: lx_quant::NmView<'_>,
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        let bf = materialize_nm(b);
        self.gemm_nt(m, k, n, a, lda, &bf, ldb, c, ldc, beta)
    }

    // ---- Epilogue-fused entry points -----------------------------------
    //
    // Every forward-shape GEMM variant has an `*_ep` twin taking an
    // [`Epilogue`] that is applied after the complete accumulation. The
    // defaults below run the plain GEMM followed by a standalone epilogue
    // pass — the correctness baseline; backends with a fused write-back
    // (Packed applies the epilogue to each hot register tile, Reference to
    // each finished row) override them. `gemm_tn` has no `_ep` twin: it is
    // the gradient-of-weights shape (`dW = Xᵀ·dY`), which never takes a bias
    // or activation.

    /// [`gemm`](Self::gemm) followed by `ep` applied to every element of the
    /// `m×n` output (bit-identical to the unfused two-pass composition).
    fn gemm_ep(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: &[f32],
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
        ep: Epilogue<'_>,
    ) {
        self.gemm(m, k, n, a, lda, b, ldb, c, ldc, beta);
        apply_epilogue(c, m, n, ldc, ep);
    }

    /// [`gemm_nt`](Self::gemm_nt) with a fused epilogue.
    fn gemm_nt_ep(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: &[f32],
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
        ep: Epilogue<'_>,
    ) {
        self.gemm_nt(m, k, n, a, lda, b, ldb, c, ldc, beta);
        apply_epilogue(c, m, n, ldc, ep);
    }

    /// [`gemm_f16`](Self::gemm_f16) with a fused epilogue.
    fn gemm_f16_ep(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: &[u16],
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
        ep: Epilogue<'_>,
    ) {
        self.gemm_f16(m, k, n, a, lda, b, ldb, c, ldc, beta);
        apply_epilogue(c, m, n, ldc, ep);
    }

    /// [`gemm_nt_f16`](Self::gemm_nt_f16) with a fused epilogue.
    fn gemm_nt_f16_ep(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: &[u16],
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
        ep: Epilogue<'_>,
    ) {
        self.gemm_nt_f16(m, k, n, a, lda, b, ldb, c, ldc, beta);
        apply_epilogue(c, m, n, ldc, ep);
    }

    /// [`gemm_q8`](Self::gemm_q8) with a fused epilogue.
    fn gemm_q8_ep(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: lx_quant::Q8View<'_>,
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
        ep: Epilogue<'_>,
    ) {
        self.gemm_q8(m, k, n, a, lda, b, ldb, c, ldc, beta);
        apply_epilogue(c, m, n, ldc, ep);
    }

    /// [`gemm_nt_q8`](Self::gemm_nt_q8) with a fused epilogue.
    fn gemm_nt_q8_ep(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: lx_quant::Q8View<'_>,
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
        ep: Epilogue<'_>,
    ) {
        self.gemm_nt_q8(m, k, n, a, lda, b, ldb, c, ldc, beta);
        apply_epilogue(c, m, n, ldc, ep);
    }

    /// [`gemm_q4`](Self::gemm_q4) with a fused epilogue.
    fn gemm_q4_ep(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: lx_quant::Q4View<'_>,
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
        ep: Epilogue<'_>,
    ) {
        self.gemm_q4(m, k, n, a, lda, b, ldb, c, ldc, beta);
        apply_epilogue(c, m, n, ldc, ep);
    }

    /// [`gemm_nt_q4`](Self::gemm_nt_q4) with a fused epilogue.
    fn gemm_nt_q4_ep(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: lx_quant::Q4View<'_>,
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
        ep: Epilogue<'_>,
    ) {
        self.gemm_nt_q4(m, k, n, a, lda, b, ldb, c, ldc, beta);
        apply_epilogue(c, m, n, ldc, ep);
    }

    /// [`gemm_nm`](Self::gemm_nm) with a fused epilogue.
    fn gemm_nm_ep(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: lx_quant::NmView<'_>,
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
        ep: Epilogue<'_>,
    ) {
        self.gemm_nm(m, k, n, a, lda, b, ldb, c, ldc, beta);
        apply_epilogue(c, m, n, ldc, ep);
    }

    /// [`gemm_nt_nm`](Self::gemm_nt_nm) with a fused epilogue.
    fn gemm_nt_nm_ep(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: lx_quant::NmView<'_>,
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
        ep: Epilogue<'_>,
    ) {
        self.gemm_nt_nm(m, k, n, a, lda, b, ldb, c, ldc, beta);
        apply_epilogue(c, m, n, ldc, ep);
    }
}

fn materialize_q8(b: lx_quant::Q8View<'_>) -> Vec<f32> {
    let mut bf = vec![0.0f32; b.len()];
    for (i, o) in bf.iter_mut().enumerate() {
        *o = b.get(i);
    }
    bf
}

fn materialize_q4(b: lx_quant::Q4View<'_>) -> Vec<f32> {
    let mut bf = vec![0.0f32; b.len()];
    for (i, o) in bf.iter_mut().enumerate() {
        *o = b.get(i);
    }
    bf
}

fn materialize_nm(b: lx_quant::NmView<'_>) -> Vec<f32> {
    let mut bf = vec![0.0f32; b.len()];
    let cols = b.cols();
    for (r, row) in bf.chunks_mut(cols.max(1)).enumerate() {
        b.decode_row_into(r, row);
    }
    bf
}

/// `C *= beta` sweep (the whole op when `k == 0`; the up-front beta pass of
/// the packed driver otherwise). Parallel across row chunks unless the
/// caller is already inside a pool worker or forced sequential.
pub(crate) fn scale_only(c: &mut [f32], m: usize, n: usize, ldc: usize, beta: f32) {
    if crate::sequential_mode() {
        for i in 0..m {
            scale_row(&mut c[i * ldc..i * ldc + n], beta);
        }
        return;
    }
    par_rows(c, m, ldc, (1 << 14) / n.max(1), |rows, chunk| {
        for i in rows.clone() {
            let local = (i - rows.start) * ldc;
            scale_row(&mut chunk[local..local + n], beta);
        }
    });
}

#[inline]
pub(crate) fn scale_row(row: &mut [f32], beta: f32) {
    if beta == 0.0 {
        row.fill(0.0);
    } else if beta != 1.0 {
        for v in row {
            *v *= beta;
        }
    }
}

#[inline]
fn axpy_row(c: &mut [f32], a: f32, b: &[f32]) {
    debug_assert_eq!(c.len(), b.len());
    for (cv, bv) in c.iter_mut().zip(b.iter()) {
        *cv += a * bv;
    }
}

#[inline]
fn dot_unrolled(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    for c in 0..chunks {
        let i = c * 4;
        acc[0] += a[i] * b[i];
        acc[1] += a[i + 1] * b[i + 1];
        acc[2] += a[i + 2] * b[i + 2];
        acc[3] += a[i + 3] * b[i + 3];
    }
    let mut sum = acc[0] + acc[1] + acc[2] + acc[3];
    for i in chunks * 4..a.len() {
        sum += a[i] * b[i];
    }
    sum
}

/// The scalar loop kernels that used to live in `lx-tensor::gemm`, kept
/// verbatim (modulo leading dims) as the correctness oracle and as the
/// small-shape arm of the dispatcher. `i-k-j` order with an A-element
/// broadcast against a contiguous B row, which LLVM auto-vectorises well;
/// rows of C split across the pool with a FLOP-based grain.
pub struct Reference;

impl KernelBackend for Reference {
    fn name(&self) -> &'static str {
        "reference"
    }

    fn gemm(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: &[f32],
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        self.gemm_ep(m, k, n, a, lda, b, ldb, c, ldc, beta, Epilogue::None);
    }

    fn gemm_nt(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: &[f32],
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        self.gemm_nt_ep(m, k, n, a, lda, b, ldb, c, ldc, beta, Epilogue::None);
    }

    /// Fused epilogue: applied to each C row right after the row's full k
    /// accumulation, inside the same worker task — same element order as the
    /// unfused pass, so results are bit-identical.
    fn gemm_ep(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: &[f32],
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
        ep: Epilogue<'_>,
    ) {
        check_view(a.len(), m, k, lda, "gemm: A");
        check_view(b.len(), k, n, ldb, "gemm: B");
        check_view(c.len(), m, n, ldc, "gemm: C");
        if m == 0 || n == 0 {
            return;
        }
        ep.check(n);
        if k == 0 {
            scale_only(c, m, n, ldc, beta);
            return apply_epilogue(c, m, n, ldc, ep);
        }
        par_rows(c, m, ldc, row_grain(k, n), |rows, chunk| {
            for i in rows.clone() {
                let local = (i - rows.start) * ldc;
                let c_row = &mut chunk[local..local + n];
                scale_row(c_row, beta);
                let a_row = &a[i * lda..i * lda + k];
                for (l, &av) in a_row.iter().enumerate() {
                    if av == 0.0 {
                        continue;
                    }
                    let b_row = &b[l * ldb..l * ldb + n];
                    axpy_row(c_row, av, b_row);
                }
                ep.apply_tile(c_row, n, 1, n, 0);
            }
        });
    }

    /// Fused epilogue for the `nt` variant; see [`gemm_ep`](Self::gemm_ep).
    fn gemm_nt_ep(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: &[f32],
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
        ep: Epilogue<'_>,
    ) {
        check_view(a.len(), m, k, lda, "gemm_nt: A");
        check_view(b.len(), n, k, ldb, "gemm_nt: B");
        check_view(c.len(), m, n, ldc, "gemm_nt: C");
        if m == 0 || n == 0 {
            return;
        }
        ep.check(n);
        if k == 0 {
            scale_only(c, m, n, ldc, beta);
            return apply_epilogue(c, m, n, ldc, ep);
        }
        par_rows(c, m, ldc, row_grain(k, n), |rows, chunk| {
            for i in rows.clone() {
                let local = (i - rows.start) * ldc;
                let c_row = &mut chunk[local..local + n];
                let a_row = &a[i * lda..i * lda + k];
                for (j, cv) in c_row.iter_mut().enumerate() {
                    let b_row = &b[j * ldb..j * ldb + k];
                    let dot = dot_unrolled(a_row, b_row);
                    *cv = if beta == 0.0 { dot } else { beta * *cv + dot };
                }
                ep.apply_tile(c_row, n, 1, n, 0);
            }
        });
    }

    fn gemm_tn(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: &[f32],
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        check_view(a.len(), k, m, lda, "gemm_tn: A");
        check_view(b.len(), k, n, ldb, "gemm_tn: B");
        check_view(c.len(), m, n, ldc, "gemm_tn: C");
        if m == 0 || n == 0 {
            return;
        }
        if k == 0 {
            return scale_only(c, m, n, ldc, beta);
        }
        par_rows(c, m, ldc, row_grain(k, n), |rows, chunk| {
            for i in rows.clone() {
                let local = (i - rows.start) * ldc;
                scale_row(&mut chunk[local..local + n], beta);
            }
            for l in 0..k {
                let b_row = &b[l * ldb..l * ldb + n];
                for i in rows.clone() {
                    let av = a[l * lda + i];
                    if av == 0.0 {
                        continue;
                    }
                    let local = (i - rows.start) * ldc;
                    axpy_row(&mut chunk[local..local + n], av, b_row);
                }
            }
        });
    }

    /// On-load decode: one B row is decoded to an f32 scratch per k-step and
    /// streamed against every row of the chunk (k-outer loop order), so the
    /// full f32 B is never materialised. Per-element accumulation order is
    /// identical to the f32 [`gemm`](KernelBackend::gemm), so results match
    /// the decode-up-front path bit for bit.
    fn gemm_f16(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: &[u16],
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        check_view(a.len(), m, k, lda, "gemm_f16: A");
        check_view(b.len(), k, n, ldb, "gemm_f16: B");
        check_view(c.len(), m, n, ldc, "gemm_f16: C");
        if m == 0 || n == 0 {
            return;
        }
        if k == 0 {
            return scale_only(c, m, n, ldc, beta);
        }
        par_rows(c, m, ldc, row_grain(k, n), |rows, chunk| {
            for i in rows.clone() {
                let local = (i - rows.start) * ldc;
                scale_row(&mut chunk[local..local + n], beta);
            }
            let mut b_row = vec![0.0f32; n];
            for l in 0..k {
                crate::half::decode_slice(&b[l * ldb..l * ldb + n], &mut b_row);
                for i in rows.clone() {
                    let av = a[i * lda + l];
                    if av == 0.0 {
                        continue;
                    }
                    let local = (i - rows.start) * ldc;
                    axpy_row(&mut chunk[local..local + n], av, &b_row);
                }
            }
        });
    }

    /// On-load decode for the `nt` variant: one `k`-long B row is decoded per
    /// output column and dotted against every A row of the chunk.
    fn gemm_nt_f16(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: &[u16],
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        check_view(a.len(), m, k, lda, "gemm_nt_f16: A");
        check_view(b.len(), n, k, ldb, "gemm_nt_f16: B");
        check_view(c.len(), m, n, ldc, "gemm_nt_f16: C");
        if m == 0 || n == 0 {
            return;
        }
        if k == 0 {
            return scale_only(c, m, n, ldc, beta);
        }
        par_rows(c, m, ldc, row_grain(k, n), |rows, chunk| {
            let mut b_row = vec![0.0f32; k];
            for j in 0..n {
                crate::half::decode_slice(&b[j * ldb..j * ldb + k], &mut b_row);
                for i in rows.clone() {
                    let a_row = &a[i * lda..i * lda + k];
                    let dot = dot_unrolled(a_row, &b_row);
                    let cv = &mut chunk[(i - rows.start) * ldc + j];
                    *cv = if beta == 0.0 { dot } else { beta * *cv + dot };
                }
            }
        });
    }

    /// On-load dequant (`gemm_decode_b`): one B row per k-step, same
    /// accumulation order as the f32 [`gemm`](KernelBackend::gemm), so
    /// results match the dequant-up-front path bit for bit.
    fn gemm_q8(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: lx_quant::Q8View<'_>,
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        check_view(a.len(), m, k, lda, "gemm_q8: A");
        check_view(b.len(), k, n, ldb, "gemm_q8: B");
        check_view(c.len(), m, n, ldc, "gemm_q8: C");
        gemm_decode_b(m, k, n, a, lda, decode_row(b, ldb), c, ldc, beta);
    }

    fn gemm_nt_q8(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: lx_quant::Q8View<'_>,
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        check_view(a.len(), m, k, lda, "gemm_nt_q8: A");
        check_view(b.len(), n, k, ldb, "gemm_nt_q8: B");
        check_view(c.len(), m, n, ldc, "gemm_nt_q8: C");
        gemm_nt_decode_b(m, k, n, a, lda, decode_row(b, ldb), c, ldc, beta);
    }

    fn gemm_q4(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: lx_quant::Q4View<'_>,
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        check_view(a.len(), m, k, lda, "gemm_q4: A");
        check_view(b.len(), k, n, ldb, "gemm_q4: B");
        check_view(c.len(), m, n, ldc, "gemm_q4: C");
        gemm_decode_b(m, k, n, a, lda, decode_row4(b, ldb), c, ldc, beta);
    }

    fn gemm_nt_q4(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: lx_quant::Q4View<'_>,
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        check_view(a.len(), m, k, lda, "gemm_nt_q4: A");
        check_view(b.len(), n, k, ldb, "gemm_nt_q4: B");
        check_view(c.len(), m, n, ldc, "gemm_nt_q4: C");
        gemm_nt_decode_b(m, k, n, a, lda, decode_row4(b, ldb), c, ldc, beta);
    }

    /// On-load N:M expansion: one B row decoded to scratch per k-step, same
    /// accumulation order as the f32 [`gemm`](KernelBackend::gemm), so
    /// results match the decode-up-front path bit for bit — the differential
    /// oracle the packed zero-group-skipping arm is checked against.
    fn gemm_nm(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: lx_quant::NmView<'_>,
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        check_view(a.len(), m, k, lda, "gemm_nm: A");
        check_view(b.len(), k, n, ldb, "gemm_nm: B");
        check_view(c.len(), m, n, ldc, "gemm_nm: C");
        gemm_decode_b(m, k, n, a, lda, decode_row_nm(b, ldb), c, ldc, beta);
    }

    fn gemm_nt_nm(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: lx_quant::NmView<'_>,
        ldb: usize,
        c: &mut [f32],
        ldc: usize,
        beta: f32,
    ) {
        check_view(a.len(), m, k, lda, "gemm_nt_nm: A");
        check_view(b.len(), n, k, ldb, "gemm_nt_nm: B");
        check_view(c.len(), m, n, ldc, "gemm_nt_nm: C");
        gemm_nt_decode_b(m, k, n, a, lda, decode_row_nm(b, ldb), c, ldc, beta);
    }
}

/// Row decoder for an int8 view under `ldb` striding: fills `out` with the
/// dequantized elements `row·ldb .. row·ldb + out.len()`.
fn decode_row(b: lx_quant::Q8View<'_>, ldb: usize) -> impl Fn(usize, &mut [f32]) + Sync + '_ {
    move |row, out| {
        let base = row * ldb;
        for (j, o) in out.iter_mut().enumerate() {
            *o = b.get(base + j);
        }
    }
}

/// NF4 twin of [`decode_row`].
fn decode_row4(b: lx_quant::Q4View<'_>, ldb: usize) -> impl Fn(usize, &mut [f32]) + Sync + '_ {
    move |row, out| {
        let base = row * ldb;
        for (j, o) in out.iter_mut().enumerate() {
            *o = b.get(base + j);
        }
    }
}

/// N:M twin of [`decode_row`]. When the row window spans the view's full
/// storage rows (`ldb == cols` and the window starts at column 0), the
/// group-walking row decode is used; any other striding falls back to the
/// elementwise flat-index path. Both are bit-identical by the codec's
/// windowed-decode contract.
fn decode_row_nm(b: lx_quant::NmView<'_>, ldb: usize) -> impl Fn(usize, &mut [f32]) + Sync + '_ {
    move |row, out| {
        if ldb == b.cols() && out.len() == b.cols() {
            b.decode_row_into(row, out);
        } else {
            let base = row * ldb;
            for (j, o) in out.iter_mut().enumerate() {
                *o = b.get(base + j);
            }
        }
    }
}

/// The k-outer on-load-decode loop shared by the quantized Reference paths:
/// one `n`-long B row decoded to scratch per k-step and streamed against
/// every A row of the chunk, never materialising the full f32 B. Per-element
/// accumulation order is identical to the f32 `Reference::gemm`.
#[allow(clippy::too_many_arguments)]
fn gemm_decode_b<D: Fn(usize, &mut [f32]) + Sync>(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    lda: usize,
    decode: D,
    c: &mut [f32],
    ldc: usize,
    beta: f32,
) {
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        return scale_only(c, m, n, ldc, beta);
    }
    par_rows(c, m, ldc, row_grain(k, n), |rows, chunk| {
        for i in rows.clone() {
            let local = (i - rows.start) * ldc;
            scale_row(&mut chunk[local..local + n], beta);
        }
        let mut b_row = vec![0.0f32; n];
        for l in 0..k {
            decode(l, &mut b_row);
            for i in rows.clone() {
                let av = a[i * lda + l];
                if av == 0.0 {
                    continue;
                }
                let local = (i - rows.start) * ldc;
                axpy_row(&mut chunk[local..local + n], av, &b_row);
            }
        }
    });
}

/// The `nt` twin of [`gemm_decode_b`]: one `k`-long B row decoded per output
/// column, dotted against every A row of the chunk.
#[allow(clippy::too_many_arguments)]
fn gemm_nt_decode_b<D: Fn(usize, &mut [f32]) + Sync>(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    lda: usize,
    decode: D,
    c: &mut [f32],
    ldc: usize,
    beta: f32,
) {
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        return scale_only(c, m, n, ldc, beta);
    }
    par_rows(c, m, ldc, row_grain(k, n), |rows, chunk| {
        let mut b_row = vec![0.0f32; k];
        for j in 0..n {
            decode(j, &mut b_row);
            for i in rows.clone() {
                let a_row = &a[i * lda..i * lda + k];
                let dot = dot_unrolled(a_row, &b_row);
                let cv = &mut chunk[(i - rows.start) * ldc + j];
                *cv = if beta == 0.0 { dot } else { beta * *cv + dot };
            }
        }
    });
}
