//! Dynamic-aware sparse operators (paper §VI).
//!
//! Sparse patterns in Long Exposure are *runtime-dynamic*: every batch gets a
//! fresh per-head attention pattern and a fresh set of active MLP neuron
//! blocks from the predictors. Classic sparse toolchains amortise their
//! indexing cost through static compilation or ahead-of-time format
//! conversion, which dynamic patterns forbid. This crate reproduces the
//! paper's answer:
//!
//! * **Offline pool construction** ([`patterns::PatternPool`]): layouts
//!   (block-CSR lookup tables) for a pool of *atomic* sparse-attention
//!   patterns are precomputed once.
//! * **Online pattern combination** ([`patterns::PatternPool::combine`]):
//!   at runtime each head picks a pooled pattern and the combined multi-head
//!   task list is assembled by offset arithmetic only — no layout
//!   recomputation (paper Fig. 6).
//! * **SDD / DSD block kernels** ([`attention`]): `S = D·Dᵀ` restricted to
//!   active score blocks, `D = S·D`, their transposed forms for the backward
//!   pass, and block-sparse row softmax.
//! * **Neuron-centric MLP kernels** ([`neuron`]): column-sparse FC1 /
//!   row-sparse FC2 matmuls over active neuron *blocks*, with FC1 weights
//!   stored column-major and FC2 row-major so active blocks are contiguous
//!   (the paper's memory-coalescing optimisation).
//! * **Unstructured baseline** ([`scattered`]): element-granular sparse ops
//!   used as the "Shadowy" arm in Fig. 9/12 — the paper (and this repo)
//!   find it *slower* than dense due to lost arithmetic intensity.

pub mod attention;
pub mod layout;
pub mod mask;
pub mod neuron;
pub mod patterns;
pub mod scattered;

pub use layout::{BlockCsr, MultiHeadLayout};
pub use mask::BlockMask;
pub use neuron::{BlockSetDiff, ColMajorWeights, NeuronBlockSet};
pub use patterns::{PatternPool, PatternSpec};

/// Default score-block edge and MLP neuron-block size (paper uses 32).
pub const DEFAULT_BLOCK: usize = 32;
