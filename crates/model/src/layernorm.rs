//! LayerNorm module with cached per-row statistics for the backward pass.

use crate::param::Param;
use lx_tensor::ops::{layernorm_backward_row, layernorm_row};
use lx_tensor::Tensor;

#[derive(Debug)]
pub struct LayerNorm {
    pub gamma: Param,
    pub beta: Param,
    pub eps: f32,
    cache: Option<LnCache>,
}

#[derive(Debug)]
struct LnCache {
    x: Tensor,
    /// Per-row statistics, kept as tensors so the buffers recycle through
    /// the step workspace instead of being reallocated every forward.
    means: Tensor,
    rstds: Tensor,
}

impl LayerNorm {
    pub fn new(name: &str, dim: usize, eps: f32) -> Self {
        LayerNorm {
            gamma: Param::frozen(format!("{name}.gamma"), Tensor::full(&[dim], 1.0)),
            beta: Param::frozen(format!("{name}.beta"), Tensor::zeros(&[dim])),
            eps,
            cache: None,
        }
    }

    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        let rows = x.rows();
        let mut y = Tensor::zeros(x.shape());
        let mut means = Tensor::zeros(&[rows]);
        let mut rstds = Tensor::zeros(&[rows]);
        for r in 0..rows {
            let (m, s) = layernorm_row(
                x.row(r),
                self.gamma.value.as_slice(),
                self.beta.value.as_slice(),
                self.eps,
                y.row_mut(r),
            );
            means.as_mut_slice()[r] = m;
            rstds.as_mut_slice()[r] = s;
        }
        self.cache = Some(LnCache {
            x: x.clone(),
            means,
            rstds,
        });
        y
    }

    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        let cache = self
            .cache
            .take()
            .expect("LayerNorm::backward without forward");
        let rows = dy.rows();
        let dim = dy.cols();
        let mut dx = Tensor::zeros(dy.shape());
        let mut dgamma = Tensor::zeros(&[dim]);
        let mut dbeta = Tensor::zeros(&[dim]);
        for r in 0..rows {
            layernorm_backward_row(
                cache.x.row(r),
                dy.row(r),
                self.gamma.value.as_slice(),
                cache.means.as_slice()[r],
                cache.rstds.as_slice()[r],
                dx.row_mut(r),
                dgamma.as_mut_slice(),
                dbeta.as_mut_slice(),
            );
        }
        if self.gamma.trainable {
            self.gamma.accumulate_grad(&dgamma);
        }
        if self.beta.trainable {
            self.beta.accumulate_grad(&dbeta);
        }
        dx
    }

    pub fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_normalises_each_row() {
        let mut ln = LayerNorm::new("ln", 8, 1e-5);
        let x = Tensor::randn(&[4, 8], 2.0, 1);
        let y = ln.forward(&x);
        for r in 0..4 {
            let row = y.row(r);
            let mean: f32 = row.iter().sum::<f32>() / 8.0;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 8.0;
            assert!(mean.abs() < 1e-4);
            assert!((var - 1.0).abs() < 1e-2);
        }
    }

    #[test]
    fn backward_dx_matches_finite_difference() {
        let mut ln = LayerNorm::new("ln", 6, 1e-6);
        // Non-trivial gamma/beta.
        ln.gamma.value = Tensor::rand_uniform(&[6], 0.5, 1.5, 2);
        ln.beta.value = Tensor::randn(&[6], 0.3, 3);
        let x = Tensor::randn(&[2, 6], 1.0, 4);
        let dy = Tensor::randn(&[2, 6], 1.0, 5);
        let _ = ln.forward(&x);
        let dx = ln.backward(&dy);
        let loss = |ln: &mut LayerNorm, x: &Tensor| -> f32 {
            let y = ln.forward(x);
            y.as_slice()
                .iter()
                .zip(dy.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        };
        let h = 1e-3;
        for idx in [0usize, 4, 9] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += h;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= h;
            let fd = (loss(&mut ln, &xp) - loss(&mut ln, &xm)) / (2.0 * h);
            assert!((dx.as_slice()[idx] - fd).abs() < 2e-3, "dx[{idx}]");
        }
    }

    #[test]
    fn bitfit_style_beta_grad_only_when_trainable() {
        let mut ln = LayerNorm::new("ln", 4, 1e-5);
        let x = Tensor::randn(&[3, 4], 1.0, 6);
        let dy = Tensor::randn(&[3, 4], 1.0, 7);
        let _ = ln.forward(&x);
        let _ = ln.backward(&dy);
        assert!(ln.beta.grad.is_none());
        ln.beta.trainable = true;
        let _ = ln.forward(&x);
        let _ = ln.backward(&dy);
        let dbeta = ln.beta.grad.as_ref().unwrap();
        // dbeta = column sums of dy.
        for c in 0..4 {
            let expect: f32 = (0..3).map(|r| dy.row(r)[c]).sum();
            assert!((dbeta.as_slice()[c] - expect).abs() < 1e-5);
        }
    }
}
